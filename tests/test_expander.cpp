#include <gtest/gtest.h>

#include <set>

#include "expander/bipartite.hpp"
#include "expander/gabber_galil.hpp"
#include "expander/margulis.hpp"
#include "expander/random_regular.hpp"
#include "expander/verify.hpp"

namespace ftcs::expander {
namespace {

TEST(Bipartite, BasicAccounting) {
  Bipartite b;
  b.inlets = 2;
  b.outlets = 3;
  b.adj = {{0, 1}, {1, 2}};
  EXPECT_EQ(b.edge_count(), 4u);
  EXPECT_EQ(b.max_out_degree(), 2u);
  EXPECT_EQ(b.max_in_degree(), 2u);  // outlet 1
  EXPECT_EQ(b.neighborhood_size({0}), 2u);
  EXPECT_EQ(b.neighborhood_size({0, 1}), 3u);
}

TEST(Bipartite, ToNetwork) {
  Bipartite b;
  b.inlets = 2;
  b.outlets = 2;
  b.adj = {{0}, {0, 1}};
  const auto net = b.to_network();
  EXPECT_EQ(net.g.vertex_count(), 4u);
  EXPECT_EQ(net.g.edge_count(), 3u);
  EXPECT_EQ(net.inputs.size(), 2u);
  EXPECT_EQ(net.outputs.size(), 2u);
  EXPECT_EQ(net.validate(), "");
}

TEST(RandomRegular, ExactDegreesBothSides) {
  const auto b = random_regular(64, 5, 1);
  EXPECT_EQ(b.inlets, 64u);
  EXPECT_EQ(b.outlets, 64u);
  for (const auto& a : b.adj) EXPECT_EQ(a.size(), 5u);
  for (auto d : b.in_degrees()) EXPECT_EQ(d, 5u);
}

TEST(RandomRegular, DeterministicInSeed) {
  const auto a = random_regular(32, 3, 9);
  const auto b = random_regular(32, 3, 9);
  EXPECT_EQ(a.adj, b.adj);
  const auto c = random_regular(32, 3, 10);
  EXPECT_NE(a.adj, c.adj);
}

TEST(RandomBiregular, BalancedInDegrees) {
  const auto b = random_biregular(60, 20, 4, 2);
  for (const auto& a : b.adj) EXPECT_EQ(a.size(), 4u);
  const auto deg = b.in_degrees();
  // 240 edges over 20 outlets: exactly 12 each.
  for (auto d : deg) EXPECT_EQ(d, 12u);
}

TEST(RandomBiregular, UnevenDivisionWithinOne) {
  const auto b = random_biregular(10, 3, 2, 3);
  const auto deg = b.in_degrees();
  std::uint32_t lo = deg[0], hi = deg[0];
  for (auto d : deg) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(GabberGalil, StructureAndDegrees) {
  const auto b = gabber_galil(5);
  EXPECT_EQ(b.inlets, 25u);
  for (const auto& a : b.adj) EXPECT_EQ(a.size(), 5u);
  // Explicit construction: reproducible without randomness.
  EXPECT_EQ(b.adj, gabber_galil(5).adj);
  // In-degrees: each of the five maps is a bijection of Z_m^2, so exactly 5.
  for (auto d : b.in_degrees()) EXPECT_EQ(d, 5u);
}

TEST(GabberGalil, SideSizing) {
  EXPECT_EQ(gabber_galil_side(25), 5u);
  EXPECT_EQ(gabber_galil_side(26), 6u);
  EXPECT_EQ(gabber_galil_side(1), 1u);
}

TEST(GabberGalil, ExpandsSmallSets) {
  const auto b = gabber_galil(7);  // t = 49
  // Every 4-subset should have strictly more than 4 neighbors.
  const auto min4 = min_neighborhood_exhaustive(b, 4);
  EXPECT_GT(min4, 4u);
}

TEST(Margulis, StructureAndDegrees) {
  const auto b = margulis(4);
  EXPECT_EQ(b.inlets, 16u);
  for (const auto& a : b.adj) EXPECT_EQ(a.size(), 8u);
  for (auto d : b.in_degrees()) EXPECT_EQ(d, 8u);  // four bijections + inverses
}

TEST(Margulis, InverseMapsAreInverses) {
  const std::uint32_t m = 5;
  const auto b = margulis(m);
  // For every inlet v and its forward image under map 0 ((x+2y, y)), the
  // image's inverse-map-4 must return to v.
  for (std::uint32_t x = 0; x < m; ++x)
    for (std::uint32_t y = 0; y < m; ++y) {
      const std::uint32_t v = x * m + y;
      const std::uint32_t fwd = b.adj[v][0];
      EXPECT_EQ(b.adj[fwd][4], v);
    }
}

TEST(Exhaustive, MinNeighborhoodSmallCases) {
  Bipartite b;
  b.inlets = 4;
  b.outlets = 4;
  b.adj = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  EXPECT_EQ(min_neighborhood_exhaustive(b, 1), 2u);
  EXPECT_EQ(min_neighborhood_exhaustive(b, 2), 3u);  // adjacent pair shares one
  EXPECT_EQ(min_neighborhood_exhaustive(b, 4), 4u);
  EXPECT_THROW((void)min_neighborhood_exhaustive(b, 0), std::invalid_argument);
  EXPECT_THROW((void)min_neighborhood_exhaustive(b, 9), std::invalid_argument);
}

TEST(Exhaustive, WorkLimitGuard) {
  const auto b = random_regular(100, 3, 1);
  EXPECT_THROW((void)min_neighborhood_exhaustive(b, 50, 1000),
               std::invalid_argument);
}

TEST(Adversarial, FindsTheExhaustiveMinimumOnSmallGraphs) {
  const auto b = random_regular(16, 3, 5);
  for (std::size_t c : {2, 4}) {
    const auto exact = min_neighborhood_exhaustive(b, c);
    const auto adv = min_neighborhood_adversarial(b, c, 40, 7);
    EXPECT_GE(adv.min_neighborhood, exact);  // adversarial is an upper bound
    EXPECT_LE(adv.min_neighborhood, exact + 1);  // and usually tight
    EXPECT_EQ(adv.witness.size(), c);
    EXPECT_EQ(b.neighborhood_size(adv.witness), adv.min_neighborhood);
  }
}

TEST(Spectral, SecondSingularValueBelowDegree) {
  const auto b = random_regular(64, 6, 11);
  const auto l2 = second_singular_value(b, 400, 3);
  ASSERT_TRUE(l2.has_value());
  // sigma_1 = d = 6 for a regular bipartite graph; a random one has
  // sigma_2 well below (Alon-Boppana floor ~ 2*sqrt(d-1) ~ 4.47).
  EXPECT_LT(*l2, 6.0);
  EXPECT_GT(*l2, 1.0);
}

TEST(Spectral, TannerBoundBehaviour) {
  // Perfect expander (lambda2 = 0): |N(S)| >= t for any S.
  EXPECT_NEAR(tanner_bound(5, 0.0, 10, 100), 100.0, 1e-9);
  // No expansion information (lambda2 = d): bound degenerates to |S|.
  EXPECT_NEAR(tanner_bound(5, 5.0, 10, 100), 10.0, 1e-9);
  // Monotone in lambda2.
  EXPECT_GT(tanner_bound(5, 2.0, 10, 100), tanner_bound(5, 4.0, 10, 100));
}

TEST(CheckExpansion, AcceptsTrueContract) {
  const auto b = random_regular(32, 5, 13);
  const auto min2 = min_neighborhood_exhaustive(b, 2);
  ExpansionSpec spec{2, min2, 32};
  EXPECT_TRUE(check_expansion(b, spec, 20, 1));
  spec.cp = min2 + 1;
  EXPECT_FALSE(check_expansion(b, spec, 20, 1));
}

TEST(CheckExpansion, RejectsWrongT) {
  const auto b = random_regular(16, 3, 1);
  EXPECT_FALSE(check_expansion(b, {2, 2, 99}, 5, 1));
}

TEST(PaperContract, RandomDegree10QuarterExpansion) {
  // The §6 shape at its smallest: a degree-10 union over 4 quarters; each
  // quarter-restricted graph must take 32·4^0=32-subsets (of t=64) to
  // >= 33.07·4^0 ≈ 34 outlets. We emulate one quarter: 64 inlets, 64
  // outlets, degree 2.5 on average — built as biregular degree 3 here (the
  // generous rotation slot), and check expansion 32 -> 34 adversarially.
  const auto b = random_biregular(64, 64, 3, 17);
  const auto adv = min_neighborhood_adversarial(b, 32, 60, 5);
  EXPECT_GE(adv.min_neighborhood, 34u);
}

}  // namespace
}  // namespace ftcs::expander
