#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "graph/dsu.hpp"

namespace ftcs::graph {
namespace {

CsrGraph path_graph(std::size_t n) {
  GraphBuilder g(n);
  for (VertexId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g.finalize();
}

TEST(GraphBuilder, BasicConstruction) {
  GraphBuilder g;
  EXPECT_EQ(g.vertex_count(), 0u);
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  const auto e = g.add_edge(a, b);
  EXPECT_EQ(g.vertex_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).from, a);
  EXPECT_EQ(g.edge(e).to, b);
  EXPECT_EQ(g.out_degree(a), 1u);
  EXPECT_EQ(g.in_degree(b), 1u);
  EXPECT_EQ(g.degree(a), 1u);
}

TEST(GraphBuilder, AddVerticesReturnsFirstId) {
  GraphBuilder g(3);
  const auto first = g.add_vertices(4);
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(g.vertex_count(), 7u);
}

TEST(GraphBuilder, MultiEdgesAllowed) {
  GraphBuilder g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST(CsrGraph, MirrorsBuilderAfterFinalize) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  const CsrGraph g = b.finalize();
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(2), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.edge(1).to, 2u);
  // Aligned target spans match the edge table.
  const auto eids = g.out_edges(0);
  const auto tgts = g.out_targets(0);
  ASSERT_EQ(eids.size(), tgts.size());
  for (std::size_t i = 0; i < eids.size(); ++i)
    EXPECT_EQ(g.edge(eids[i]).to, tgts[i]);
}

TEST(Network, ValidateCatchesBadTerminals) {
  NetworkBuilder nb;
  nb.g.add_vertices(2);
  nb.g.add_edge(0, 1);
  nb.inputs = {0};
  nb.outputs = {5};  // out of range
  EXPECT_NE(nb.finalize().validate(), "");
  nb.outputs = {1};
  EXPECT_EQ(nb.finalize().validate(), "");
}

TEST(Network, ValidateCatchesStageViolation) {
  NetworkBuilder nb;
  nb.g.add_vertices(2);
  nb.g.add_edge(0, 1);
  nb.stage = {1, 0};  // edge goes backwards in stage
  EXPECT_NE(nb.finalize().validate(), "");
  nb.stage = {0, 1};
  EXPECT_EQ(nb.finalize().validate(), "");
}

TEST(Network, TerminalQueries) {
  NetworkBuilder nb;
  nb.g.add_vertices(3);
  nb.inputs = {0};
  nb.outputs = {2};
  const Network net = nb.finalize();
  EXPECT_TRUE(net.is_input(0));
  EXPECT_FALSE(net.is_input(1));
  EXPECT_TRUE(net.is_output(2));
  EXPECT_TRUE(net.is_terminal(0));
  EXPECT_FALSE(net.is_terminal(1));
}

TEST(Dsu, UniteAndFind) {
  Dsu d(5);
  EXPECT_EQ(d.component_count(), 5u);
  EXPECT_TRUE(d.unite(0, 1));
  EXPECT_FALSE(d.unite(1, 0));
  EXPECT_TRUE(d.same(0, 1));
  EXPECT_FALSE(d.same(0, 2));
  EXPECT_EQ(d.component_count(), 4u);
  EXPECT_EQ(d.class_size(0), 2u);
}

TEST(Dsu, TransitiveUnions) {
  Dsu d(6);
  d.unite(0, 1);
  d.unite(2, 3);
  d.unite(1, 2);
  EXPECT_TRUE(d.same(0, 3));
  EXPECT_EQ(d.class_size(3), 4u);
  EXPECT_EQ(d.component_count(), 3u);
}

TEST(Bfs, DirectedDistancesOnPath) {
  const auto g = path_graph(5);
  const VertexId src[1] = {0};
  const auto dist = bfs_directed(g, src);
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
  // Reverse direction unreachable.
  const VertexId src2[1] = {4};
  const auto dist2 = bfs_directed(g, src2);
  EXPECT_EQ(dist2[0], kUnreachable);
}

TEST(Bfs, UndirectedIgnoresDirection) {
  const auto g = path_graph(5);
  const VertexId src[1] = {4};
  const auto dist = bfs_undirected(g, src);
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_EQ(dist[v], 4 - v);
}

TEST(Bfs, BlockedVerticesStopSearch) {
  const auto g = path_graph(5);
  std::vector<std::uint8_t> blocked(5, 0);
  blocked[2] = 1;
  const VertexId src[1] = {0};
  const auto dist = bfs_directed(g, src, blocked);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(Bfs, MaxDistLimits) {
  const auto g = path_graph(10);
  const VertexId src[1] = {0};
  const auto dist = bfs_directed(g, src, {}, 3);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(Bfs, MultiSource) {
  const auto g = path_graph(10);
  const VertexId src[2] = {0, 9};
  const auto dist = bfs_undirected(g, src);
  EXPECT_EQ(dist[5], 4u);  // closer to 9
  EXPECT_EQ(dist[4], 4u);  // closer to 0
}

TEST(ShortestPath, FindsAndAvoids) {
  // Diamond: 0 -> 1 -> 3, 0 -> 2 -> 3.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 3);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  const CsrGraph g = b.finalize();
  std::vector<std::uint8_t> target(4, 0);
  target[3] = 1;
  const VertexId src[1] = {0};
  auto path = shortest_path(g, src, target);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);
  EXPECT_EQ(path->front(), 0u);
  EXPECT_EQ(path->back(), 3u);

  std::vector<std::uint8_t> blocked(4, 0);
  blocked[1] = 1;
  path = shortest_path(g, src, target, blocked);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ((*path)[1], 2u);

  blocked[2] = 1;
  EXPECT_FALSE(shortest_path(g, src, target, blocked).has_value());
}

TEST(ShortestPath, SourceIsTarget) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const CsrGraph g = b.finalize();
  std::vector<std::uint8_t> target(2, 0);
  target[0] = 1;
  const VertexId src[1] = {0};
  const auto path = shortest_path(g, src, target);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST(Components, CountsAndLabels) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  const auto [comp, count] = connected_components(b.finalize());
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[5], comp[0]);
}

TEST(Topological, OrderAndCycleDetection) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  auto order = topological_order(b.finalize());
  ASSERT_TRUE(order.has_value());
  std::vector<std::uint32_t> position(4);
  for (std::uint32_t i = 0; i < order->size(); ++i) position[(*order)[i]] = i;
  EXPECT_LT(position[0], position[1]);
  EXPECT_LT(position[1], position[2]);

  b.add_edge(2, 0);  // cycle; refinalize the updated builder
  EXPECT_FALSE(topological_order(b.finalize()).has_value());
  EXPECT_FALSE(is_dag(b.finalize()));
}

TEST(NetworkDepth, LongestInputOutputPath) {
  NetworkBuilder nb;
  nb.g.add_vertices(5);
  nb.g.add_edge(0, 1);
  nb.g.add_edge(1, 2);
  nb.g.add_edge(0, 2);
  nb.g.add_edge(2, 3);
  nb.inputs = {0};
  nb.outputs = {3, 4};
  EXPECT_EQ(network_depth(nb.finalize()), 3u);  // 0-1-2-3
}

TEST(NetworkDepth, NoPathIsZero) {
  NetworkBuilder nb;
  nb.g.add_vertices(2);
  nb.inputs = {0};
  nb.outputs = {1};
  EXPECT_EQ(network_depth(nb.finalize()), 0u);
}

TEST(EdgeBall, PaperDistanceDefinition) {
  // Path 0-1-2-3: dist(0, edge(0,1)) = 1, dist(0, edge(1,2)) = 2, etc.
  const auto g = path_graph(4);
  const auto ball1 = edge_ball(g, 0, 1);
  ASSERT_EQ(ball1.size(), 1u);
  EXPECT_EQ(ball1[0].second, 1u);
  const auto ball2 = edge_ball(g, 0, 2);
  EXPECT_EQ(ball2.size(), 2u);
  const auto ball3 = edge_ball(g, 0, 3);
  EXPECT_EQ(ball3.size(), 3u);
  // Zones: exactly one edge per distance.
  for (const auto& [e, d] : ball3) EXPECT_EQ(d, e + 1);
}

TEST(EdgeBall, ZeroRadiusEmpty) {
  const auto g = path_graph(3);
  EXPECT_TRUE(edge_ball(g, 0, 0).empty());
}

}  // namespace
}  // namespace ftcs::graph
