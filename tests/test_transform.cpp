#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/transform.hpp"

namespace ftcs::graph {
namespace {

Network tiny_net() {
  NetworkBuilder nb;
  nb.g.add_vertices(4);
  nb.g.add_edge(0, 1);
  nb.g.add_edge(1, 2);
  nb.g.add_edge(1, 3);
  nb.inputs = {0};
  nb.outputs = {2, 3};
  nb.stage = {0, 1, 2, 2};
  return nb.finalize();
}

TEST(Mirror, SwapsTerminalsAndReversesEdges) {
  const auto net = tiny_net();
  const auto m = mirror(net);
  EXPECT_EQ(m.inputs, net.outputs);
  EXPECT_EQ(m.outputs, net.inputs);
  EXPECT_EQ(m.g.edge_count(), net.g.edge_count());
  for (EdgeId e = 0; e < net.g.edge_count(); ++e) {
    EXPECT_EQ(m.g.edge(e).from, net.g.edge(e).to);
    EXPECT_EQ(m.g.edge(e).to, net.g.edge(e).from);
  }
  // Stages flipped: 0 <-> max.
  EXPECT_EQ(m.stage[0], 2);
  EXPECT_EQ(m.stage[2], 0);
  EXPECT_EQ(m.validate(), "");
}

TEST(Mirror, InvolutionOnStructure) {
  const auto net = tiny_net();
  const auto mm = mirror(mirror(net));
  EXPECT_EQ(mm.inputs, net.inputs);
  EXPECT_EQ(mm.outputs, net.outputs);
  for (EdgeId e = 0; e < net.g.edge_count(); ++e) {
    EXPECT_EQ(mm.g.edge(e).from, net.g.edge(e).from);
    EXPECT_EQ(mm.g.edge(e).to, net.g.edge(e).to);
  }
}

Network two_switch_gadget() {
  // input -> mid -> output: a 2-switch chain 1-network.
  NetworkBuilder gadget_nb;
  gadget_nb.g.add_vertices(3);
  gadget_nb.g.add_edge(0, 1);
  gadget_nb.g.add_edge(1, 2);
  gadget_nb.inputs = {0};
  gadget_nb.outputs = {2};
  gadget_nb.name = "chain2";
  return gadget_nb.finalize();
}

TEST(Substitution, CountsMatchFormula) {
  const auto base = tiny_net();
  const auto gadget = two_switch_gadget();
  const auto sub = substitute_edges(base, gadget);
  // |V| = V_base + E_base * (V_g - 2); |E| = E_base * E_g.
  EXPECT_EQ(sub.g.vertex_count(), 4u + 3u * 1u);
  EXPECT_EQ(sub.g.edge_count(), 3u * 2u);
  EXPECT_EQ(sub.inputs, base.inputs);
  EXPECT_EQ(sub.outputs, base.outputs);
}

TEST(Substitution, PreservesReachability) {
  const auto base = tiny_net();
  const auto sub = substitute_edges(base, two_switch_gadget());
  const VertexId src[1] = {0};
  const auto dist = bfs_directed(sub.g, src);
  for (VertexId o : sub.outputs) EXPECT_NE(dist[o], kUnreachable);
  // Depth doubles with a 2-chain gadget.
  EXPECT_EQ(network_depth(sub), 2 * network_depth(base));
}

TEST(Substitution, RejectsNonOneNetworkGadget) {
  const auto base = tiny_net();
  NetworkBuilder bad_nb;
  bad_nb.g.add_vertices(2);
  bad_nb.inputs = {0, 1};
  bad_nb.outputs = {1};
  const Network bad = bad_nb.finalize();
  EXPECT_THROW(substitute_edges(base, bad), std::invalid_argument);
}

TEST(Substitution, ParallelGadget) {
  // Gadget: two parallel switches input -> output.
  NetworkBuilder gadget_nb;
  gadget_nb.g.add_vertices(2);
  gadget_nb.g.add_edge(0, 1);
  gadget_nb.g.add_edge(0, 1);
  gadget_nb.inputs = {0};
  gadget_nb.outputs = {1};
  const auto base = tiny_net();
  const Network gadget = gadget_nb.finalize();
  const auto sub = substitute_edges(base, gadget);
  EXPECT_EQ(sub.g.vertex_count(), base.g.vertex_count());
  EXPECT_EQ(sub.g.edge_count(), 2 * base.g.edge_count());
}

TEST(Induced, KeepsSelectedSubgraph) {
  const auto net = tiny_net();
  std::vector<std::uint8_t> keep = {1, 1, 1, 0};  // drop vertex 3
  const auto result = induced_subnetwork(net, keep);
  EXPECT_EQ(result.net.g.vertex_count(), 3u);
  EXPECT_EQ(result.net.g.edge_count(), 2u);  // (0,1), (1,2)
  EXPECT_EQ(result.net.inputs.size(), 1u);
  EXPECT_EQ(result.net.outputs.size(), 1u);  // output 3 dropped
  EXPECT_EQ(result.old_to_new[3], kNoVertex);
  EXPECT_NE(result.old_to_new[2], kNoVertex);
}

TEST(Induced, DropInternalVertexBreaksPaths) {
  const auto net = tiny_net();
  std::vector<std::uint8_t> keep = {1, 0, 1, 1};  // drop the middle vertex
  const auto result = induced_subnetwork(net, keep);
  EXPECT_EQ(result.net.g.edge_count(), 0u);
  EXPECT_EQ(result.net.inputs.size(), 1u);
  EXPECT_EQ(result.net.outputs.size(), 2u);
}

TEST(Induced, StagePreserved) {
  const auto net = tiny_net();
  std::vector<std::uint8_t> keep = {1, 1, 0, 1};
  const auto result = induced_subnetwork(net, keep);
  ASSERT_EQ(result.net.stage.size(), result.net.g.vertex_count());
  EXPECT_EQ(result.net.stage[result.old_to_new[3]], 2);
}

}  // namespace
}  // namespace ftcs::graph
