#include <gtest/gtest.h>

#include "fault/fault_instance.hpp"
#include "ftcs/monte_carlo.hpp"
#include "networks/benes.hpp"
#include "networks/crossbar.hpp"
#include "util/prng.hpp"

namespace ftcs::core {
namespace {

TEST(Estimate, MatchesKnownCoin) {
  const auto p = estimate_probability(50000, [](std::size_t i) {
    util::Xoshiro256 rng(util::derive_seed(123, i));
    return rng.bernoulli(0.37);
  });
  EXPECT_EQ(p.trials, 50000u);
  EXPECT_NEAR(p.estimate(), 0.37, 0.01);
  const auto [lo, hi] = p.wilson();
  EXPECT_LT(lo, 0.37);
  EXPECT_GT(hi, 0.37);
}

TEST(Estimate, DeterministicAcrossRuns) {
  auto trial = [](std::size_t i) {
    util::Xoshiro256 rng(util::derive_seed(9, i));
    return rng.bernoulli(0.5);
  };
  const auto a = estimate_probability(2000, trial);
  const auto b = estimate_probability(2000, trial);
  EXPECT_EQ(a.successes, b.successes);
}

TEST(Theorem2Trial, CleanInstanceSucceeds) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 21));
  const auto r = theorem2_trial(ft, fault::FaultModel::none(), 1);
  EXPECT_TRUE(r.no_short);
  EXPECT_TRUE(r.majority_fwd);
  EXPECT_TRUE(r.majority_bwd);
  EXPECT_TRUE(r.success());
}

TEST(Theorem2Trial, CatastrophicEpsilonFails) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 22));
  const auto p = theorem2_success_probability(
      ft, fault::FaultModel::symmetric(0.2), 20, 5);
  EXPECT_LT(p.estimate(), 0.2);
}

TEST(Theorem2Trial, SmallEpsilonMostlySucceeds) {
  const auto ft = build_ft_network(FtParams::sim(2, 8, 6, 1, 23));
  const auto p = theorem2_success_probability(
      ft, fault::FaultModel::symmetric(1e-5), 30, 6);
  EXPECT_GT(p.estimate(), 0.8);
}

TEST(Theorem2Trial, BusyProbesRun) {
  const auto ft = build_ft_network(FtParams::sim(2, 8, 6, 1, 24));
  Theorem2TrialOptions opts;
  opts.busy_probes = 2;
  opts.busy_paths_per_probe = 2;
  const auto r = theorem2_trial(ft, fault::FaultModel::symmetric(1e-6), 3, opts);
  EXPECT_TRUE(r.success());
}

TEST(Theorem2Trial, MonotoneInEpsilon) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 25));
  const auto lo = theorem2_success_probability(
      ft, fault::FaultModel::symmetric(1e-5), 30, 7);
  const auto hi = theorem2_success_probability(
      ft, fault::FaultModel::symmetric(5e-3), 30, 7);
  EXPECT_GE(lo.estimate() + 0.15, hi.estimate());  // allow MC noise
}

TEST(BaselineSurvival, CleanNetworksSurvive) {
  const auto net = networks::build_crossbar(8);
  EXPECT_TRUE(baseline_survival_trial(net, fault::FaultModel::none(), 4, 1));
  const networks::Benes b(3);
  EXPECT_TRUE(baseline_survival_trial(b.network(), fault::FaultModel::none(), 2, 2));
}

TEST(BaselineSurvival, HeavyFaultsKillCrossbar) {
  const auto net = networks::build_crossbar(8);
  std::size_t survived = 0;
  for (std::uint64_t s = 0; s < 30; ++s)
    if (baseline_survival_trial(net, fault::FaultModel::symmetric(0.05), 4, s))
      ++survived;
  EXPECT_LT(survived, 30u);
}

TEST(Theorem2Trial, SurvivesDozensOfInternalFaults) {
  // The fault-tolerance demonstration at simulation scale: at eps = 1e-3
  // the instance carries ~30 failed switches per trial (15360 edges), yet
  // the majority-access criterion almost always holds. An unprotected
  // unique-path network loses specific routes with every failed switch;
  // the E12 comparison bench quantifies that separation over a sweep.
  const auto ft = build_ft_network(FtParams::sim(2, 8, 6, 1, 31));
  std::size_t ok = 0, faults = 0;
  const std::size_t trials = 25;
  for (std::uint64_t s = 0; s < trials; ++s) {
    fault::FaultInstance inst(ft.net, fault::FaultModel::symmetric(1e-3),
                              util::derive_seed(555, s));
    faults += inst.failures().size();
    if (theorem2_trial(ft, fault::FaultModel::symmetric(1e-3),
                       util::derive_seed(555, s))
            .success())
      ++ok;
  }
  EXPECT_GT(faults / trials, 10u);  // genuinely damaged instances
  EXPECT_GE(ok * 10, trials * 8);   // >= 80% survive
}

}  // namespace
}  // namespace ftcs::core
