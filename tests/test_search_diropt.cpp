// Direction-optimizing frontier (ftcs/search.hpp) equivalence pins.
//
// The dir-opt search is an A/B dispatch: set_direction_optimize(false)
// reproduces the classic top-down body instruction-for-instruction, ON adds
// the bottom-up bitmap sweep when a frontier outgrows the unvisited set.
// Both must stamp the SAME vertex set per level (the sweep probes exactly
// the edges the top-down expansion would relax), so on contraction-free
// traces the two modes agree on every observable: verdicts, call ids, path
// lengths, visit counts, books. Under welds (runtime contraction) the
// 0-1 cost labels become discovery-order dependent, so the welded pins
// assert verdict parity and per-hop path validity, not exact costs.
//
//  - Fixed-trace A/B equivalence on cantor, both engines (GreedyRouter and
//    one-worker ConcurrentRouter), healthy and degraded (failed switches).
//  - A fan-out network that deterministically trips the bottom-up
//    heuristic (bottom_up_levels > 0), healthy + welded + degraded, both
//    engines — including the sweep's reverse-conduction probe.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ftcs/concurrent_router.hpp"
#include "ftcs/router.hpp"
#include "networks/cantor.hpp"
#include "util/prng.hpp"

namespace ftcs {
namespace {

/// Is u -> v traversable for a settled path: a usable forward switch, or a
/// usable stuck-on (welded) switch v -> u conducting in reverse.
template <class Router>
bool hop_ok(const Router& r, const graph::CsrGraph& g, graph::VertexId u,
            graph::VertexId v) {
  {
    const auto eids = g.out_edges(u);
    const auto tgts = g.out_targets(u);
    for (std::size_t i = 0; i < eids.size(); ++i)
      if (tgts[i] == v && r.edge_usable(eids[i])) return true;
  }
  const auto eids = g.out_edges(v);
  const auto tgts = g.out_targets(v);
  for (std::size_t i = 0; i < eids.size(); ++i)
    if (tgts[i] == u && r.edge_usable(eids[i]) && r.edge_contracted(eids[i]))
      return true;
  return false;
}

template <class Router>
void expect_valid_path(const Router& r, const graph::CsrGraph& g,
                       const std::vector<graph::VertexId>& path) {
  ASSERT_GE(path.size(), 2u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    EXPECT_TRUE(hop_ok(r, g, path[i], path[i + 1]))
        << "hop " << path[i] << " -> " << path[i + 1] << " is not an edge";
}

/// Drives the same fixed request trace through a dir-opt and a top-down
/// router and asserts every observable matches. Works for GreedyRouter and
/// ConcurrentRouter::Worker (identical connect/disconnect/path_of shape).
template <class Session>
void run_equivalence_trace(Session& dir_opt, Session& top_down,
                           std::uint32_t terminals, std::uint64_t seed,
                           std::size_t ops) {
  constexpr auto kNone = static_cast<std::uint32_t>(-1);  // both routers'
                                                          // kNoCall value
  util::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> active_a, active_b;
  std::size_t accepted = 0;
  for (std::size_t op = 0; op < ops; ++op) {
    if (!active_a.empty() && rng.below(4) == 0) {
      const auto idx = rng.below(active_a.size());
      dir_opt.disconnect(active_a[idx]);
      top_down.disconnect(active_b[idx]);
      active_a[idx] = active_a.back();
      active_a.pop_back();
      active_b[idx] = active_b.back();
      active_b.pop_back();
      continue;
    }
    const auto in = static_cast<std::uint32_t>(rng.below(terminals));
    const auto out = static_cast<std::uint32_t>(rng.below(terminals));
    const auto ca = dir_opt.connect(in, out);
    const auto cb = top_down.connect(in, out);
    ASSERT_EQ(ca == kNone, cb == kNone)
        << "accept/reject divergence at op " << op;
    if (ca == kNone) continue;
    ASSERT_EQ(ca, cb) << "slot allocation divergence at op " << op;
    // Same shortest cost; the vertex sequence may differ only by the
    // sweep's tie-breaks, and both settle, so busy evolution must agree.
    EXPECT_EQ(dir_opt.path_of(ca), top_down.path_of(cb))
        << "path divergence at op " << op;
    active_a.push_back(ca);
    active_b.push_back(cb);
    ++accepted;
  }
  ASSERT_GT(accepted, 0u);
}

/// Full-book comparison for the contraction-free traces: everything the
/// baseline search reports must match; the per-direction split is only
/// recorded by the dir-opt body and must add up to the shared total.
void expect_books_match(const core::RouterStats& a, const core::RouterStats& b) {
  EXPECT_EQ(a.connect_calls, b.connect_calls);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected_terminal, b.rejected_terminal);
  EXPECT_EQ(a.rejected_no_path, b.rejected_no_path);
  EXPECT_EQ(a.disconnects, b.disconnects);
  EXPECT_EQ(a.vertices_visited, b.vertices_visited);
  EXPECT_EQ(a.path_vertices, b.path_vertices);
  EXPECT_EQ(a.visits_forward + a.visits_backward, a.vertices_visited);
  EXPECT_EQ(b.visits_forward, 0u);   // baseline body records no split
  EXPECT_EQ(b.visits_backward, 0u);
  EXPECT_EQ(b.bottom_up_levels, 0u);
}

TEST(DirOptSearch, GreedyFixedTraceEquivalence) {
  const auto net = networks::build_cantor({4, 0});
  core::GreedyRouter a(net);  // dir-opt is the default
  core::GreedyRouter b(net);
  b.set_direction_optimize(false);
  ASSERT_TRUE(a.direction_optimize());
  run_equivalence_trace(a, b, static_cast<std::uint32_t>(net.inputs.size()),
                        2024, 800);
  expect_books_match(a.stats(), b.stats());
  EXPECT_EQ(a.busy_vertices(), b.busy_vertices());
}

TEST(DirOptSearch, ConcurrentOneWorkerFixedTraceEquivalence) {
  const auto net = networks::build_cantor({4, 0});
  core::ConcurrentRouter a(net, 1);
  core::ConcurrentRouter b(net, 1);
  b.set_direction_optimize(false);
  run_equivalence_trace(a.worker(0), b.worker(0),
                        static_cast<std::uint32_t>(net.inputs.size()), 2024,
                        800);
  expect_books_match(a.stats(), b.stats());
  EXPECT_EQ(a.busy_vertices(), b.busy_vertices());
}

TEST(DirOptSearch, GreedyDegradedOverlayEquivalence) {
  const auto net = networks::build_cantor({4, 0});
  core::GreedyRouter a(net);
  core::GreedyRouter b(net);
  b.set_direction_optimize(false);
  // Fail a deterministic spread of switches on BOTH routers; contraction
  // stays off, so costs stay unit and the full books must still match.
  for (graph::EdgeId e = 3; e < net.g.edge_count(); e += 17) {
    a.fail_edge(e);
    b.fail_edge(e);
  }
  run_equivalence_trace(a, b, static_cast<std::uint32_t>(net.inputs.size()),
                        4711, 800);
  expect_books_match(a.stats(), b.stats());
}

// ---------------------------------------------------------------------------
// Bottom-up trigger coverage. Bidirectional frontiers on the layered nets
// stay near-balanced, so the heuristic rarely fires there; this fan-out net
// makes it fire deterministically: after one hop the forward frontier {hub}
// carries `mids` edges while almost every vertex is still unvisited, so
//   fedges * alpha * V > (V - stamped) * E
// holds at the second forward level.
//
//   in -> hub -> mid[0..mids) -> join -> out      (+ optionally back -> hub
//   and back -> join, giving the sweep a reverse-conduction probe target
//   when back->hub is welded shut).
// ---------------------------------------------------------------------------

struct Star {
  graph::Network net;
  graph::VertexId in, hub, join, out, back;
  graph::EdgeId back_to_hub;  // the weldable reverse conductor
};

Star build_star(std::size_t mids, bool with_back) {
  graph::NetworkBuilder nb;
  Star s;
  s.in = nb.g.add_vertex();
  s.hub = nb.g.add_vertex();
  std::vector<graph::VertexId> mid(mids);
  for (auto& m : mid) m = nb.g.add_vertex();
  s.join = nb.g.add_vertex();
  s.out = nb.g.add_vertex();
  s.back = graph::kNoVertex;
  s.back_to_hub = static_cast<graph::EdgeId>(-1);
  nb.g.add_edge(s.in, s.hub);
  for (const auto m : mid) nb.g.add_edge(s.hub, m);
  for (const auto m : mid) nb.g.add_edge(m, s.join);
  nb.g.add_edge(s.join, s.out);
  if (with_back) {
    s.back = nb.g.add_vertex();
    s.back_to_hub = nb.g.add_edge(s.back, s.hub);  // points AWAY from out
    nb.g.add_edge(s.back, s.join);
  }
  nb.inputs = {s.in};
  nb.outputs = {s.out};
  nb.name = "fanout-star";
  s.net = nb.finalize();
  return s;
}

TEST(DirOptSearch, BottomUpSweepFiresAndMatchesTopDown) {
  const auto star = build_star(256, false);
  core::GreedyRouter a(star.net);
  core::GreedyRouter b(star.net);
  b.set_direction_optimize(false);

  const auto ca = a.connect(0, 0);
  const auto cb = b.connect(0, 0);
  ASSERT_NE(ca, core::GreedyRouter::kNoCall);
  ASSERT_NE(cb, core::GreedyRouter::kNoCall);
  EXPECT_EQ(a.path_length(ca), b.path_length(cb));
  EXPECT_EQ(a.path_length(ca), 5u);  // in, hub, mid, join, out
  expect_valid_path(a, star.net.g, a.path_of(ca));
  EXPECT_GT(a.stats().bottom_up_levels, 0u)
      << "the fan-out level should have tripped the bottom-up heuristic";
  EXPECT_EQ(b.stats().bottom_up_levels, 0u);
  EXPECT_EQ(a.stats().vertices_visited, b.stats().vertices_visited);
  a.disconnect(ca);
  b.disconnect(cb);

  // Degraded: fail most of the fan. Both modes must still route through a
  // surviving mid and agree on the books.
  for (graph::EdgeId e = 1; e <= 256; e += 2) {  // hub->mid edges are 1..256
    a.fail_edge(e);
    b.fail_edge(e);
  }
  const auto da = a.connect(0, 0);
  const auto db = b.connect(0, 0);
  ASSERT_NE(da, core::GreedyRouter::kNoCall);
  ASSERT_NE(db, core::GreedyRouter::kNoCall);
  EXPECT_EQ(a.path_length(da), b.path_length(db));
  expect_valid_path(a, star.net.g, a.path_of(da));
  a.disconnect(da);
  b.disconnect(db);
}

TEST(DirOptSearch, BottomUpSweepConcurrentWorkerMatches) {
  const auto star = build_star(256, false);
  core::ConcurrentRouter a(star.net, 1);
  core::ConcurrentRouter b(star.net, 1);
  b.set_direction_optimize(false);
  auto& wa = a.worker(0);
  auto& wb = b.worker(0);
  const auto ca = wa.connect(0, 0);
  const auto cb = wb.connect(0, 0);
  ASSERT_NE(ca, core::ConcurrentRouter::kNoCall);
  ASSERT_NE(cb, core::ConcurrentRouter::kNoCall);
  EXPECT_EQ(wa.path_length(ca), wb.path_length(cb));
  expect_valid_path(a, star.net.g, wa.path_of(ca));
  EXPECT_GT(a.stats().bottom_up_levels, 0u);
  EXPECT_EQ(a.stats().vertices_visited, b.stats().vertices_visited);
  wa.disconnect(ca);
  wb.disconnect(cb);
}

TEST(DirOptSearch, BottomUpWeldedOverlayStaysEquivalent) {
  // Weld back->hub shut: it conducts both ways for free, so the cheapest
  // route is in, hub, back, join, out (2 unit hops + the weld + join->out)
  // and the forward sweep can only discover `back` through its
  // reverse-conduction probe (back's only in-edge is from nothing; its
  // out-edge points INTO the frontier).
  const auto star = build_star(256, true);
  core::GreedyRouter a(star.net);
  core::GreedyRouter b(star.net);
  b.set_direction_optimize(false);
  a.contract_edge(star.back_to_hub);
  b.contract_edge(star.back_to_hub);

  const auto ca = a.connect(0, 0);
  const auto cb = b.connect(0, 0);
  ASSERT_NE(ca, core::GreedyRouter::kNoCall);
  ASSERT_NE(cb, core::GreedyRouter::kNoCall);
  EXPECT_GT(a.stats().bottom_up_levels, 0u);
  // Welded costs are discovery-order dependent: pin verdicts and validity,
  // not exact hop sequences.
  expect_valid_path(a, star.net.g, a.path_of(ca));
  expect_valid_path(b, star.net.g, b.path_of(cb));
  a.disconnect(ca);
  b.disconnect(cb);
  EXPECT_EQ(a.busy_vertices(), 0u);
  EXPECT_EQ(b.busy_vertices(), 0u);

  // Same weld on the concurrent engine's worker.
  core::ConcurrentRouter c(star.net, 1);
  c.contract_edge(star.back_to_hub);
  auto& wc = c.worker(0);
  const auto cc = wc.connect(0, 0);
  ASSERT_NE(cc, core::ConcurrentRouter::kNoCall);
  expect_valid_path(c, star.net.g, wc.path_of(cc));
  wc.disconnect(cc);
  EXPECT_EQ(c.busy_vertices(), 0u);
}

TEST(DirOptSearch, GreedyWeldedTraceVerdictParity) {
  // Stateless welded trace on cantor: route one pair at a time (connect,
  // check, disconnect) with a handful of switches stuck on. Costs may
  // tie-break differently between the modes, but reachability — and hence
  // every verdict — must agree, and every settled path must be electrically
  // sound hop by hop.
  const auto net = networks::build_cantor({4, 0});
  core::GreedyRouter a(net);
  core::GreedyRouter b(net);
  b.set_direction_optimize(false);
  for (graph::EdgeId e = 5; e < net.g.edge_count(); e += 29) {
    a.contract_edge(e);
    b.contract_edge(e);
  }
  const auto n = static_cast<std::uint32_t>(net.inputs.size());
  util::Xoshiro256 rng(99);
  std::size_t routed = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto in = static_cast<std::uint32_t>(rng.below(n));
    const auto out = static_cast<std::uint32_t>(rng.below(n));
    const auto ca = a.connect(in, out);
    const auto cb = b.connect(in, out);
    ASSERT_EQ(ca == core::GreedyRouter::kNoCall,
              cb == core::GreedyRouter::kNoCall)
        << "welded verdict divergence at trial " << trial;
    if (ca == core::GreedyRouter::kNoCall) continue;
    expect_valid_path(a, net.g, a.path_of(ca));
    expect_valid_path(b, net.g, b.path_of(cb));
    a.disconnect(ca);
    b.disconnect(cb);
    ++routed;
  }
  ASSERT_GT(routed, 0u);
  EXPECT_EQ(a.busy_vertices(), 0u);
  EXPECT_EQ(b.busy_vertices(), 0u);
}

}  // namespace
}  // namespace ftcs
