// Growth racing live traffic, under ThreadSanitizer: four concurrent
// sessions churn calls while a mutator thread runs a mixed fault storm and
// lands ONE hitless doubling in the middle of it. The drain contract is
// the synchronization story: sessions hold the plane shared, every
// topology mutation (fault or growth) holds it exclusively — growth owns
// every session for its quiesce window exactly like inject/repair does.
// Invariants: sessions observe the doubled terminal space only after the
// merge (input_count re-read under the shared lock), every handle settles
// to a typed ack, growth kills nothing, and busy state balances after the
// final quiescent drain.
#include <gtest/gtest.h>

#include <atomic>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "fault/schedule.hpp"
#include "networks/cantor.hpp"
#include "svc/exchange.hpp"
#include "util/prng.hpp"

namespace ftcs {
namespace {

TEST(ExchangeGrowthTsan, GrowthMidFaultStormRacingSessionsStaysSound) {
  const auto net = networks::build_cantor({4, 0});
  constexpr unsigned kSessions = 4;
  svc::ExchangeConfig cfg;
  cfg.backend = svc::Backend::kConcurrent;
  cfg.sessions = kSessions;
  svc::Exchange ex(net, std::move(cfg));

  // The storm names base edge ids only — they stay valid across the merge
  // (edge-id stability is the contract the remap rides on).
  const auto schedule = fault::FaultSchedule::from_model(
      fault::FaultModel::symmetric(6e-4), net.g.edge_count(),
      /*horizon=*/400.0, /*mean_repair=*/15.0, /*seed=*/43);
  ASSERT_GT(schedule.fail_count(), 5u);

  // The doubling plan is built from the quiescent base before any thread
  // starts; the mutator consumes it mid-storm.
  svc::GrowthPlan plan;
  plan.grown = networks::grow_cantor(ex.network(), {4, 0});

  std::shared_mutex plane;  // sessions shared; faults and growth exclusive
  std::atomic<bool> done{false};
  std::vector<svc::Outcome> strays;  // mutator-owned rerouted survivors

  std::vector<std::thread> threads;
  threads.reserve(kSessions + 1);
  std::vector<std::vector<svc::CallId>> leftover(kSessions);
  for (unsigned s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      util::Xoshiro256 rng(util::derive_seed(617, s));
      std::vector<svc::Outcome> mine;
      for (int op = 0; op < 2000; ++op) {
        std::shared_lock<std::shared_mutex> lk(plane);
        // The terminal space doubles mid-run: re-read it every op, under
        // the lock, so the session dials new lines the epoch they appear.
        const auto n = static_cast<std::uint32_t>(ex.input_count());
        if (!mine.empty() && (rng() & 3u) == 0) {
          const auto idx = rng() % mine.size();
          const svc::RejectReason r = ex.hangup(mine[idx].id);
          EXPECT_TRUE(r == svc::RejectReason::kNone ||
                      r == svc::RejectReason::kFaulted ||
                      r == svc::RejectReason::kStaleHandle)
              << to_string(r);
          mine[idx] = mine.back();
          mine.pop_back();
        } else {
          const auto in = static_cast<std::uint32_t>(rng() % n);
          const auto out = static_cast<std::uint32_t>(rng() % n);
          const svc::Outcome o = ex.call({in, out, 0, 0}, s);
          if (!o.connected()) continue;
          EXPECT_FALSE(ex.path_of(o.id).empty());
          mine.push_back(o);
        }
      }
      for (const auto& o : mine) leftover[s].push_back(o.id);
    });
  }

  threads.emplace_back([&] {
    const auto& events = schedule.events();
    const std::size_t grow_at = events.size() / 2;
    bool grown = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (done.load(std::memory_order_acquire)) break;
      std::unique_lock<std::shared_mutex> lk(plane);
      if (i == grow_at) {
        const svc::TopologyOutcome out =
            ex.apply(svc::TopologyEvent::make_grow(plan));
        ASSERT_TRUE(out.growth.has_value());
        EXPECT_TRUE(out.growth->applied) << out.growth->error;
        EXPECT_EQ(out.growth->calls_killed, 0u);
        grown = true;
      }
      const svc::FaultImpact impact = ex.apply(events[i]);
      for (const auto& re : impact.reroutes)
        if (re.connected()) strays.push_back(re);
      lk.unlock();
      std::this_thread::yield();
    }
    // Sessions may outlast a short storm; land the doubling regardless.
    if (!grown) {
      std::unique_lock<std::shared_mutex> lk(plane);
      const svc::TopologyOutcome out =
          ex.apply(svc::TopologyEvent::make_grow(plan));
      ASSERT_TRUE(out.growth.has_value());
      EXPECT_TRUE(out.growth->applied) << out.growth->error;
    }
  });

  for (unsigned s = 0; s < kSessions; ++s) threads[s].join();
  done.store(true, std::memory_order_release);
  threads.back().join();

  // Quiescent drain: this thread owns every session now.
  for (const auto& session_calls : leftover)
    for (const auto id : session_calls) {
      const svc::RejectReason r = ex.hangup(id);
      EXPECT_TRUE(r == svc::RejectReason::kNone ||
                  r == svc::RejectReason::kFaulted ||
                  r == svc::RejectReason::kStaleHandle)
          << to_string(r);
    }
  for (const auto& o : strays) {
    const svc::RejectReason r = ex.hangup(o.id);
    EXPECT_TRUE(r == svc::RejectReason::kNone ||
                r == svc::RejectReason::kFaulted ||
                r == svc::RejectReason::kStaleHandle)
        << to_string(r);
  }
  EXPECT_EQ(ex.active_calls(), 0u);
  EXPECT_EQ(ex.busy_vertices(), 0u);
  EXPECT_EQ(ex.input_count(), 2 * net.inputs.size());

  const svc::ExchangeStats st = ex.stats();
  EXPECT_EQ(st.growths, 1u);
  EXPECT_EQ(st.calls_killed_by_growth, 0u);
  EXPECT_EQ(st.router.accepted, st.hangups + st.calls_killed_by_fault);
  EXPECT_EQ(st.calls_killed_by_fault,
            st.reroute_succeeded + st.reroute_failed);
}

}  // namespace
}  // namespace ftcs
