#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "util/parallel.hpp"
#include "util/table.hpp"

namespace ftcs::util {
namespace {

TEST(Parallel, CountMatchesSerial) {
  const auto count = parallel_count(1000, [](std::size_t i) { return i % 3 == 0; });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < 1000; ++i)
    if (i % 3 == 0) ++expected;
  EXPECT_EQ(count, expected);
}

TEST(Parallel, ForCoversAllIndices) {
  std::vector<std::atomic<int>> touched(500);
  parallel_for(0, 500, [&](std::size_t i) { touched[i].fetch_add(1); });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(Parallel, ForWithOffset) {
  std::atomic<std::size_t> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145u);  // 10 + ... + 19
}

TEST(Parallel, ChunksPartitionTotal) {
  std::atomic<std::size_t> covered{0};
  parallel_chunks(1000, 7, [&](unsigned, std::size_t lo, std::size_t hi) {
    covered.fetch_add(hi - lo);
  });
  EXPECT_EQ(covered.load(), 1000u);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, WorkerCountPositive) { EXPECT_GE(worker_count(), 1u); }

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 2.5);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "x"});
  std::ostringstream os;
  t.write_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowPaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(FormatSig, Ranges) {
  EXPECT_EQ(format_sig(0.0), "0");
  EXPECT_EQ(format_sig(1.0), "1");
  EXPECT_EQ(format_sig(0.5), "0.5");
  EXPECT_NE(format_sig(1e-9).find("e"), std::string::npos);
  EXPECT_NE(format_sig(3.14159, 3), format_sig(3.14159, 5));
}

}  // namespace
}  // namespace ftcs::util
