#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "util/atomic_bitset.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace ftcs::util {
namespace {

TEST(Parallel, CountMatchesSerial) {
  const auto count = parallel_count(1000, [](std::size_t i) { return i % 3 == 0; });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < 1000; ++i)
    if (i % 3 == 0) ++expected;
  EXPECT_EQ(count, expected);
}

TEST(Parallel, ForCoversAllIndices) {
  std::vector<std::atomic<int>> touched(500);
  parallel_for(0, 500, [&](std::size_t i) { touched[i].fetch_add(1); });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(Parallel, ForWithOffset) {
  std::atomic<std::size_t> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145u);  // 10 + ... + 19
}

TEST(Parallel, ChunksPartitionTotal) {
  std::atomic<std::size_t> covered{0};
  parallel_chunks(1000, 7, [&](unsigned, std::size_t lo, std::size_t hi) {
    covered.fetch_add(hi - lo);
  });
  EXPECT_EQ(covered.load(), 1000u);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, WorkerCountPositive) { EXPECT_GE(worker_count(), 1u); }

TEST(Parallel, ChunkPartitionIsPureFunctionOfTotalAndThreads) {
  // The bit-identical contract of the parallel_* helpers: chunk boundaries
  // depend only on (total, threads), never on the pool or scheduling.
  std::mutex m;
  std::vector<std::array<std::size_t, 3>> seen;
  parallel_chunks(1000, 7, [&](unsigned t, std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lk(m);
    seen.push_back({t, lo, hi});
  });
  std::sort(seen.begin(), seen.end());
  const std::size_t chunk = (1000 + 6) / 7;  // 143
  ASSERT_EQ(seen.size(), 7u);
  for (std::size_t t = 0; t < seen.size(); ++t) {
    EXPECT_EQ(seen[t][0], t);
    EXPECT_EQ(seen[t][1], t * chunk);
    EXPECT_EQ(seen[t][2], std::min<std::size_t>(1000, t * chunk + chunk));
  }
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::vector<std::atomic<int>> hits(257);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ManySequentialBatchesReuseWorkers) {
  // Exercises the park/wake cycle: each batch must wake parked workers and
  // complete; a lost wakeup would hang this test.
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 300; ++batch)
    pool.run(5, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 1500u);
}

TEST(ThreadPool, NestedRunFromWorkerExecutesInline) {
  ThreadPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  pool.run(4, [&](std::size_t) {
    pool.run(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32u);
}

TEST(ThreadPool, ConcurrentExternalSubmittersShareThePool) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s)
    submitters.emplace_back([&] {
      for (int batch = 0; batch < 50; ++batch)
        pool.run(7, [&](std::size_t) { total.fetch_add(1); });
    });
  for (auto& th : submitters) th.join();
  EXPECT_EQ(total.load(), 4u * 50u * 7u);
}

TEST(ThreadPool, ZeroWorkersDegradesToInline) {
  ThreadPool pool(0);
  std::size_t sum = 0;  // non-atomic on purpose: must run on this thread
  pool.run(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
}

TEST(AtomicBitset, TrySetClaimsEachBitExactlyOnce) {
  AtomicBitset bits(200);
  EXPECT_TRUE(bits.try_set(67));
  EXPECT_FALSE(bits.try_set(67));  // second claim of the same bit loses
  EXPECT_TRUE(bits.test(67));
  EXPECT_TRUE(bits.try_set(68));  // neighbor in the same word unaffected
  bits.reset(67);
  EXPECT_FALSE(bits.test(67));
  EXPECT_TRUE(bits.try_set(67));  // released bits are claimable again
  EXPECT_EQ(bits.count(), 2u);
}

TEST(AtomicBitset, ConcurrentClaimsHaveUniqueWinners) {
  constexpr std::size_t kBits = 128;
  constexpr unsigned kThreads = 4;
  AtomicBitset bits(kBits);
  std::vector<std::atomic<int>> winners(kBits);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kBits; ++i)
        if (bits.try_set(i)) winners[i].fetch_add(1);
    });
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i < kBits; ++i)
    EXPECT_EQ(winners[i].load(), 1) << "bit " << i << " had multiple winners";
  EXPECT_EQ(bits.count(), kBits);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 2.5);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "x"});
  std::ostringstream os;
  t.write_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowPaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(FormatSig, Ranges) {
  EXPECT_EQ(format_sig(0.0), "0");
  EXPECT_EQ(format_sig(1.0), "1");
  EXPECT_EQ(format_sig(0.5), "0.5");
  EXPECT_NE(format_sig(1e-9).find("e"), std::string::npos);
  EXPECT_NE(format_sig(3.14159, 3), format_sig(3.14159, 5));
}

}  // namespace
}  // namespace ftcs::util
