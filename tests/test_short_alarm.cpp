// Live Lemma 7 short detection: fault::WeldComponents unit behaviour and
// the acceptance-criteria equivalence pin — for mixed fault storms across
// networks/seeds/eps, the Exchange's ShortAlarm fires exactly when
// FaultInstance::terminals_shorted on the accumulated fault set is true,
// raised at the triggering inject() and cleared at the clearing repair().
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "fault/fault_instance.hpp"
#include "fault/schedule.hpp"
#include "fault/weld_components.hpp"
#include "networks/cantor.hpp"
#include "networks/crossbar.hpp"
#include "svc/exchange.hpp"

namespace ftcs {
namespace {

/// in -> a -> m -> b -> out: a unique chain of 4 switches between the only
/// terminal pair; welding all 4 contracts in and out into one node.
graph::Network build_line_net() {
  graph::NetworkBuilder nb;
  const auto in = nb.g.add_vertex();
  const auto a = nb.g.add_vertex();
  const auto m = nb.g.add_vertex();
  const auto b = nb.g.add_vertex();
  const auto out = nb.g.add_vertex();
  nb.g.add_edge(in, a);   // edge 0
  nb.g.add_edge(a, m);    // edge 1
  nb.g.add_edge(m, b);    // edge 2
  nb.g.add_edge(b, out);  // edge 3
  nb.inputs = {in};
  nb.outputs = {out};
  nb.name = "line";
  return nb.finalize();
}

TEST(WeldComponents, ChainBridgeRaisesOnLastWeldAndClearsOnRepair) {
  const auto net = build_line_net();
  fault::WeldComponents wc(net);
  EXPECT_FALSE(wc.shorted());
  EXPECT_FALSE(wc.add_weld(0));  // {in, a}: one terminal in the node
  EXPECT_FALSE(wc.add_weld(1));  // {in, a, m}
  EXPECT_FALSE(wc.add_weld(2));  // {in, a, m, b}
  EXPECT_FALSE(wc.shorted());
  EXPECT_TRUE(wc.add_weld(3));  // out joins in's node: Lemma 7
  EXPECT_TRUE(wc.shorted());
  const auto pair = wc.shorted_pair();
  ASSERT_TRUE(pair.has_value());
  EXPECT_TRUE((pair->first == net.inputs[0] && pair->second == net.outputs[0]) ||
              (pair->first == net.outputs[0] && pair->second == net.inputs[0]));

  // Repairing a MIDDLE weld splits the chain: the short clears even though
  // the terminal-adjacent welds survive.
  EXPECT_TRUE(wc.remove_weld(1));
  EXPECT_FALSE(wc.shorted());
  EXPECT_EQ(wc.weld_count(), 3u);
  // Re-welding it bridges again.
  EXPECT_TRUE(wc.add_weld(1));
  EXPECT_TRUE(wc.shorted());
  // Idempotence: re-adding or re-removing a weld never flips state.
  EXPECT_FALSE(wc.add_weld(1));
  wc.remove_weld(0);
  EXPECT_FALSE(wc.shorted());
  EXPECT_FALSE(wc.remove_weld(0));
}

TEST(WeldComponents, CrossbarSingleWeldShortsItsTerminalPair) {
  // In a crossbar the switch (i, j) connects input i directly to output j:
  // one weld is already the catastrophe.
  const auto net = networks::build_crossbar(4);
  fault::WeldComponents wc(net);
  EXPECT_TRUE(wc.add_weld(5));
  EXPECT_TRUE(wc.shorted());
  const auto pair = wc.shorted_pair();
  ASSERT_TRUE(pair.has_value());
  EXPECT_TRUE(net.is_terminal(pair->first));
  EXPECT_TRUE(net.is_terminal(pair->second));
  EXPECT_NE(pair->first, pair->second);
  // A second weld keeps the state shorted (no new raise edge).
  EXPECT_FALSE(wc.add_weld(6));
  // Removing one of two shorting welds keeps the other short alive.
  EXPECT_FALSE(wc.remove_weld(5));
  EXPECT_TRUE(wc.shorted());
  EXPECT_TRUE(wc.remove_weld(6));
  EXPECT_FALSE(wc.shorted());
}

TEST(ExchangeShortAlarm, InjectRaisesRepairClearsWithTypedAlarm) {
  const auto net = build_line_net();
  svc::Exchange ex(net);
  using Kind = fault::FaultEvent::Kind;
  for (const graph::EdgeId e : {0u, 1u, 2u}) {
    const auto impact = ex.inject({0.0, e, Kind::kStuckOn});
    EXPECT_FALSE(impact.alarm.has_value());
    EXPECT_FALSE(ex.shorted());
  }
  const auto raise = ex.inject({0.0, 3u, Kind::kStuckOn});
  ASSERT_TRUE(raise.alarm.has_value());
  EXPECT_TRUE(raise.alarm->raised);
  EXPECT_EQ(raise.alarm->trigger, 3u);
  EXPECT_TRUE(ex.shorted());
  ASSERT_TRUE(ex.last_short_alarm().has_value());
  EXPECT_TRUE(ex.last_short_alarm()->raised);

  const auto clear = ex.repair({1.0, 2u, Kind::kRepair});
  ASSERT_TRUE(clear.alarm.has_value());
  EXPECT_FALSE(clear.alarm->raised);
  EXPECT_EQ(clear.alarm->trigger, 2u);
  // The clear echoes the pair the raise reported.
  EXPECT_EQ(clear.alarm->a, raise.alarm->a);
  EXPECT_EQ(clear.alarm->b, raise.alarm->b);
  EXPECT_GT(clear.alarm->seq, raise.alarm->seq);
  EXPECT_FALSE(ex.shorted());

  const auto st = ex.stats();
  EXPECT_EQ(st.shorts_raised, 1u);
  EXPECT_EQ(st.shorts_cleared, 1u);
}

// The acceptance pin: replay mixed storms event by event and require the
// live short state to match the offline reference — a FaultInstance built
// from the ACCUMULATED currently-down set — after every single event, with
// the typed alarm appearing exactly on the transitions.
TEST(ExchangeShortAlarm, LiveDetectionMatchesOfflineReferenceUnderStorms) {
  struct Config {
    graph::Network net;
    double eps;
    std::uint64_t seed;
  };
  std::vector<Config> configs;
  for (const std::uint64_t seed : {7u, 19u, 101u}) {
    configs.push_back({networks::build_crossbar(6), 0.04, seed});
    configs.push_back({networks::build_cantor({3, 0}), 0.02, seed});
    configs.push_back({build_line_net(), 0.12, seed});
  }

  std::uint64_t total_raises = 0;
  for (const Config& c : configs) {
    svc::Exchange ex(c.net);
    const auto schedule = fault::FaultSchedule::from_model(
        fault::FaultModel::symmetric(c.eps), c.net.g.edge_count(),
        /*horizon=*/30.0, /*mean_repair=*/8.0, c.seed);
    std::map<graph::EdgeId, fault::SwitchState> down;
    bool prev_shorted = false;
    for (const auto& ev : schedule.events()) {
      const svc::FaultImpact impact = ex.apply(ev);
      // Mirror the Exchange's idempotency in the accumulated set.
      if (ev.kind == fault::FaultEvent::Kind::kRepair) {
        down.erase(ev.edge);
      } else if (down.find(ev.edge) == down.end()) {
        down[ev.edge] = ev.kind == fault::FaultEvent::Kind::kStuckOn
                            ? fault::SwitchState::kClosedFail
                            : fault::SwitchState::kOpenFail;
      }
      std::vector<fault::Failure> failures;
      failures.reserve(down.size());
      for (const auto& [edge, state] : down) failures.push_back({edge, state});
      fault::FaultInstance ref(c.net, std::move(failures));
      ASSERT_EQ(ex.shorted(), ref.terminals_shorted())
          << c.net.name << " seed " << c.seed << " eps " << c.eps << " at t="
          << ev.time << " edge " << ev.edge;
      // Typed alarm exactly on the transition, silent otherwise.
      if (ex.shorted() != prev_shorted) {
        ASSERT_TRUE(impact.alarm.has_value());
        EXPECT_EQ(impact.alarm->raised, ex.shorted());
        EXPECT_EQ(impact.alarm->trigger, ev.edge);
        if (impact.alarm->raised) {
          ++total_raises;
          // The reported pair is a genuinely shorted one: two distinct
          // terminals in one electrical node of the reference contraction.
          ASSERT_NE(impact.alarm->a, graph::kNoVertex);
          ASSERT_NE(impact.alarm->b, graph::kNoVertex);
          EXPECT_NE(impact.alarm->a, impact.alarm->b);
          EXPECT_TRUE(c.net.is_terminal(impact.alarm->a));
          EXPECT_TRUE(c.net.is_terminal(impact.alarm->b));
          EXPECT_TRUE(ref.contraction().same(impact.alarm->a, impact.alarm->b));
        }
      } else {
        EXPECT_FALSE(impact.alarm.has_value());
      }
      prev_shorted = ex.shorted();
    }
    const auto st = ex.stats();
    EXPECT_EQ(st.shorts_raised - st.shorts_cleared,
              ex.shorted() ? 1u : 0u);
  }
  // The storm parameters are chosen so the pin actually exercises raises.
  EXPECT_GT(total_raises, 0u);
}

}  // namespace
}  // namespace ftcs
