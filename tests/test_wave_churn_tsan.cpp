// Wave routing under real contention AND a racing fault plane. Four
// concurrent sessions route admission windows with connect_wave while a
// fifth thread flips switches open-failed/repaired and welded/un-welded
// (the connect-safe overlay subset — kill_vertex needs quiescence and is
// exercised by the Exchange fault-plane tests). Run under TSan in CI (this
// file carries the `tsan` ctest label via FTCS_TSAN_TESTS), this is the
// data-race proof of the wave claim path: terminal CAS holds, the
// holder-map defer discipline, window-order claims with demotion, and the
// dirty overlay snapshots taken per wave round.
//
// Invariants at quiescence mirror the per-request churn stress: no vertex
// on two active paths, busy accounting balances against the settled path
// lengths, the verdict counters partition connect_calls, and a full drain
// returns the network to all-idle.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ftcs/concurrent_router.hpp"
#include "ftcs/router.hpp"
#include "networks/cantor.hpp"
#include "util/prng.hpp"

namespace ftcs {
namespace {

/// First edge id from u to v (sentinel: edge_count).
graph::EdgeId edge_between(const graph::CsrGraph& g, graph::VertexId u,
                           graph::VertexId v) {
  const auto eids = g.out_edges(u);
  const auto tgts = g.out_targets(u);
  for (std::size_t i = 0; i < eids.size(); ++i)
    if (tgts[i] == v) return eids[i];
  return static_cast<graph::EdgeId>(g.edge_count());
}

TEST(WaveChurn, WavesRacingFlipsKeepClaimInvariants) {
  const auto net = networks::build_cantor({5, 0});
  constexpr unsigned kWorkers = 4;
  constexpr std::size_t kWindows = 250;
  constexpr std::size_t kWindow = 8;
  core::ConcurrentRouter router(net, kWorkers);
  const auto n = static_cast<std::uint32_t>(net.inputs.size());

  // Disjoint flip sets off a probe's paths: first hops flip open/repaired,
  // second hops flip welded/un-welded.
  std::vector<graph::EdgeId> doomed, welded;
  {
    core::GreedyRouter probe(net);
    for (std::uint32_t i = 0; i + 1 < n; i += 2) {
      const auto c = probe.connect(i, i + 1);
      if (c == core::GreedyRouter::kNoCall) continue;
      const auto path = probe.path_of(c);
      if (path.size() >= 3) {
        doomed.push_back(edge_between(net.g, path[0], path[1]));
        welded.push_back(edge_between(net.g, path[1], path[2]));
      }
      probe.disconnect(c);
    }
  }
  ASSERT_FALSE(doomed.empty());
  ASSERT_FALSE(welded.empty());

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers + 1);
  for (unsigned t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      auto& w = router.worker(t);
      util::Xoshiro256 rng(util::derive_seed(1291, t));
      std::vector<core::ConcurrentRouter::CallId> mine;
      std::vector<core::WaveItem> items(kWindow);
      for (std::size_t window = 0; window < kWindows; ++window) {
        for (auto& it : items) {
          it = core::WaveItem{};
          it.in = static_cast<std::uint32_t>(rng.below(n));
          it.out = static_cast<std::uint32_t>(rng.below(n));
        }
        w.connect_wave(items.data(), items.size());
        for (const auto& it : items) {
          if (it.call == core::ConcurrentRouter::kNoCall) continue;
          EXPECT_EQ(it.path_length, w.path_length(it.call));
          mine.push_back(it.call);
        }
        // Churn some calls back out so slots and vertices recycle under
        // the racing flips.
        for (std::size_t k = 0; k < mine.size();) {
          if (rng.below(3) == 0) {
            w.disconnect(mine[k]);
            mine[k] = mine.back();
            mine.pop_back();
          } else {
            ++k;
          }
        }
      }
      // Leave `mine` connected: the quiescent invariant sweep below wants
      // live claims to audit (the final drain releases them).
    });
  }
  threads.emplace_back([&] {
    util::Xoshiro256 rng(util::derive_seed(1291, 99));
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto e : doomed) router.fail_edge(e);
      std::this_thread::yield();
      for (const auto e : welded) router.contract_edge(e);
      std::this_thread::yield();
      for (const auto e : doomed) router.repair_edge(e);
      for (const auto e : welded) router.uncontract_edge(e);
      std::this_thread::yield();
    }
  });
  for (unsigned t = 0; t < kWorkers; ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  // Quiescent claim invariants, exactly as the per-request churn stress.
  std::vector<int> owner(net.g.vertex_count(), -1);
  std::size_t total_path_vertices = 0;
  std::size_t total_active = 0;
  for (unsigned t = 0; t < kWorkers; ++t) {
    auto& worker = router.worker(t);
    for (const auto id : worker.active_call_ids()) {
      const auto path = worker.path_of(id);
      ASSERT_EQ(path.size(), worker.path_length(id));
      ASSERT_FALSE(path.empty());
      total_path_vertices += path.size();
      ++total_active;
      for (const auto v : path) {
        EXPECT_EQ(owner[v], -1)
            << "vertex " << v << " claimed by workers " << owner[v] << " and "
            << t;
        owner[v] = static_cast<int>(t);
        EXPECT_TRUE(router.is_busy(v));
      }
    }
  }
  EXPECT_EQ(router.active_calls(), total_active);
  EXPECT_EQ(router.busy_vertices(), total_path_vertices);

  const auto stats = router.stats();
  EXPECT_EQ(stats.connect_calls, stats.accepted + stats.rejected_terminal +
                                     stats.rejected_no_path +
                                     stats.rejected_contention);
  EXPECT_EQ(stats.accepted - stats.disconnects, total_active);
  EXPECT_GT(stats.wave_epochs, 0u);

  for (unsigned t = 0; t < kWorkers; ++t) {
    auto& worker = router.worker(t);
    for (const auto id : worker.active_call_ids()) worker.disconnect(id);
  }
  EXPECT_EQ(router.active_calls(), 0u);
  EXPECT_EQ(router.busy_vertices(), 0u);
}

}  // namespace
}  // namespace ftcs
