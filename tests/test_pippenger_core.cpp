#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "networks/pippenger_recursive.hpp"

namespace ftcs::networks {
namespace {

RecursiveCoreParams small_params() {
  RecursiveCoreParams p;
  p.radix = 4;
  p.width_mult = 4;
  p.degree = 6;
  p.levels = 2;
  p.gamma = 0;
  p.seed = 3;
  return p;
}

TEST(RecursiveCore, StageWidthsAndVertexCount) {
  const auto p = small_params();
  EXPECT_EQ(p.block_size(0), 4u);
  EXPECT_EQ(p.block_size(2), 64u);
  EXPECT_EQ(p.stage_width(), 64u);
  EXPECT_EQ(p.stage_count(), 5u);
  const auto core = build_recursive_core(p);
  EXPECT_EQ(core.net.g.vertex_count(), 5u * 64);
  EXPECT_EQ(core.net.finalize().validate(), "");
}

TEST(RecursiveCore, ExactDegrees) {
  const auto core = build_recursive_core(small_params());
  const auto& p = core.params;
  // Every vertex not in the last stage has out-degree = degree; every vertex
  // not in the first stage has in-degree = degree.
  for (std::uint32_t s = 0; s < p.stage_count(); ++s) {
    for (std::size_t i = 0; i < p.stage_width(); ++i) {
      const auto v = core.vertex(s, i);
      if (s + 1 < p.stage_count()) EXPECT_EQ(core.net.g.out_degree(v), p.degree);
      else EXPECT_EQ(core.net.g.out_degree(v), 0u);
      if (s > 0) EXPECT_EQ(core.net.g.in_degree(v), p.degree);
      else EXPECT_EQ(core.net.g.in_degree(v), 0u);
    }
  }
}

TEST(RecursiveCore, EdgeCount) {
  const auto p = small_params();
  const auto core = build_recursive_core(p);
  EXPECT_EQ(core.net.g.edge_count(),
            std::size_t{2} * p.levels * p.degree * p.stage_width());
}

TEST(RecursiveCore, EdgesRespectBlockStructure) {
  const auto p = small_params();
  const auto core = build_recursive_core(p);
  // A stage-0 vertex in block b must only reach stage-1 vertices in parent
  // block b / radix.
  for (graph::EdgeId e = 0; e < core.net.g.edge_count(); ++e) {
    const auto& ed = core.net.g.edge(e);
    const auto sf = core.net.stage[ed.from];
    const auto st = core.net.stage[ed.to];
    EXPECT_EQ(st, sf + 1);
    if (sf == 0) {
      const std::size_t from_block = (ed.from % p.stage_width()) / p.block_size(0);
      const std::size_t to_block =
          (ed.to % p.stage_width()) / p.block_size(1);
      EXPECT_EQ(to_block, from_block / p.radix);
    }
  }
}

TEST(RecursiveCore, FirstAndLastBlocks) {
  const auto core = build_recursive_core(small_params());
  const auto first = core.first_blocks();
  const auto last = core.last_blocks();
  EXPECT_EQ(first.size(), 16u);  // radix^levels
  EXPECT_EQ(last.size(), 16u);
  EXPECT_EQ(first[0].size(), 4u);
  // Blocks tile the stage without overlap.
  std::vector<int> seen(core.net.g.vertex_count(), 0);
  for (const auto& blk : first)
    for (auto v : blk) {
      EXPECT_EQ(core.net.stage[v], 0);
      EXPECT_EQ(seen[v]++, 0);
    }
}

TEST(RecursiveCore, MirrorSymmetryOfReachability) {
  const auto core = build_recursive_core(small_params());
  // Every first-stage vertex reaches the middle stage; every last-stage
  // vertex is reached from the middle stage.
  const auto first = core.first_blocks();
  const graph::VertexId src[1] = {first[0][0]};
  const auto dist = graph::bfs_directed(core.net.g.finalize(), src);
  std::size_t reachable_last = 0;
  for (const auto& blk : core.last_blocks())
    for (auto v : blk)
      if (dist[v] != graph::kUnreachable) ++reachable_last;
  EXPECT_GT(reachable_last, 0u);
}

TEST(RecursiveCore, ParameterValidation) {
  RecursiveCoreParams p = small_params();
  p.radix = 1;
  EXPECT_THROW(build_recursive_core(p), std::invalid_argument);
  p = small_params();
  p.degree = 2;  // < radix
  EXPECT_THROW(build_recursive_core(p), std::invalid_argument);
}

TEST(ExpanderColumn, DegreeSplitRotates) {
  // radix 4, degree 10: per (child, quarter) copies in {2, 3}, summing to 10
  // per child and 10 in-degree per parent vertex.
  graph::NetworkBuilder net;
  const std::size_t bs = 8;
  net.g.add_vertices(4 * bs + 4 * bs);
  std::vector<std::vector<graph::VertexId>> children(4), parents(1);
  for (std::size_t c = 0; c < 4; ++c) {
    children[c].resize(bs);
    for (std::size_t i = 0; i < bs; ++i)
      children[c][i] = static_cast<graph::VertexId>(c * bs + i);
  }
  parents[0].resize(4 * bs);
  for (std::size_t i = 0; i < 4 * bs; ++i)
    parents[0][i] = static_cast<graph::VertexId>(4 * bs + i);
  connect_expander_column(net, children, parents, 4, 10, false, 77);
  for (std::size_t v = 0; v < 4 * bs; ++v)
    EXPECT_EQ(net.g.out_degree(static_cast<graph::VertexId>(v)), 10u);
  for (std::size_t v = 4 * bs; v < 8 * bs; ++v)
    EXPECT_EQ(net.g.in_degree(static_cast<graph::VertexId>(v)), 10u);
}

TEST(ExpanderColumn, RejectsMismatchedBlocks) {
  graph::NetworkBuilder net;
  net.g.add_vertices(10);
  std::vector<std::vector<graph::VertexId>> children(3), parents(1);
  EXPECT_THROW(connect_expander_column(net, children, parents, 4, 8, false, 1),
               std::invalid_argument);
}

TEST(RecursiveNonblocking, StructureAndTerminals) {
  RecursiveNonblockingParams p;
  p.levels = 2;
  p.radix = 4;
  p.width_mult = 4;
  p.degree = 6;
  p.seed = 5;
  const auto net = build_recursive_nonblocking(p);
  EXPECT_EQ(net.inputs.size(), 16u);
  EXPECT_EQ(net.outputs.size(), 16u);
  EXPECT_EQ(net.validate(), "");
  EXPECT_TRUE(graph::is_dag(net.g));
  // Depth: input -> (2*levels-1) core stages -> output = 2*(levels-1)+2.
  EXPECT_EQ(graph::network_depth(net), 2u * (p.levels - 1) + 2u);
  EXPECT_THROW(build_recursive_nonblocking({1, 4, 4, 6, 1}),
               std::invalid_argument);
}

TEST(RecursiveNonblocking, EveryInputReachesEveryOutput) {
  RecursiveNonblockingParams p;
  p.levels = 2;
  p.width_mult = 4;
  p.degree = 6;
  const auto net = build_recursive_nonblocking(p);
  for (graph::VertexId in : net.inputs) {
    const graph::VertexId src[1] = {in};
    const auto dist = graph::bfs_directed(net.g, src);
    for (graph::VertexId out : net.outputs)
      ASSERT_NE(dist[out], graph::kUnreachable);
  }
}

}  // namespace
}  // namespace ftcs::networks
