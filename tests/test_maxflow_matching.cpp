#include <gtest/gtest.h>

#include "graph/matching.hpp"
#include "graph/maxflow.hpp"

namespace ftcs::graph {
namespace {

TEST(Dinic, SimpleChain) {
  Dinic d(3);
  d.add_arc(0, 1, 5);
  d.add_arc(1, 2, 3);
  EXPECT_EQ(d.max_flow(0, 2), 3);
}

TEST(Dinic, ParallelPaths) {
  Dinic d(4);
  d.add_arc(0, 1, 1);
  d.add_arc(1, 3, 1);
  d.add_arc(0, 2, 1);
  d.add_arc(2, 3, 1);
  EXPECT_EQ(d.max_flow(0, 3), 2);
}

TEST(Dinic, FlowAccessors) {
  Dinic d(2);
  const auto arc = d.add_arc(0, 1, 7);
  EXPECT_EQ(d.max_flow(0, 1), 7);
  EXPECT_EQ(d.flow(arc), 7);
  EXPECT_EQ(d.residual(arc), 0);
}

TEST(MengerPaths, DiamondHasOneVertexDisjointPath) {
  // 0 -> 1 -> 3 and 0 -> 2 -> 3 share endpoints 0, 3; with endpoint
  // capacities one, only a single fully vertex-disjoint path exists.
  GraphBuilder g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const VertexId s[1] = {0}, t[1] = {3};
  EXPECT_EQ(max_vertex_disjoint_paths(g.finalize(), s, t), 1u);
}

TEST(MengerPaths, TwoSourcesTwoTargets) {
  // 0 -> 2 -> 4 and 1 -> 3 -> 5: two disjoint paths.
  GraphBuilder g(6);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(1, 3);
  g.add_edge(3, 5);
  const VertexId s[2] = {0, 1}, t[2] = {4, 5};
  EXPECT_EQ(max_vertex_disjoint_paths(g.finalize(), s, t), 2u);
}

TEST(MengerPaths, BottleneckVertexLimitsFlow) {
  // Two sources funnel through vertex 2 to two targets: max 1 disjoint path.
  GraphBuilder g(5);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(2, 4);
  const VertexId s[2] = {0, 1}, t[2] = {3, 4};
  EXPECT_EQ(max_vertex_disjoint_paths(g.finalize(), s, t), 1u);
}

TEST(MengerPaths, BlockedVertices) {
  GraphBuilder g(6);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(1, 3);
  g.add_edge(3, 5);
  std::vector<std::uint8_t> blocked(6, 0);
  blocked[2] = 1;
  const VertexId s[2] = {0, 1}, t[2] = {4, 5};
  EXPECT_EQ(max_vertex_disjoint_paths(g.finalize(), s, t, blocked), 1u);
}

TEST(MengerPaths, CompleteBipartiteFullFlow) {
  GraphBuilder g(8);
  for (VertexId i = 0; i < 4; ++i)
    for (VertexId o = 4; o < 8; ++o) g.add_edge(i, o);
  const VertexId s[4] = {0, 1, 2, 3}, t[4] = {4, 5, 6, 7};
  EXPECT_EQ(max_vertex_disjoint_paths(g.finalize(), s, t), 4u);
}

TEST(MengerPaths, ExtractedPathsAreValidAndDisjoint) {
  GraphBuilder g(8);
  for (VertexId i = 0; i < 3; ++i)
    for (VertexId m = 3; m < 6; ++m) g.add_edge(i, m);
  for (VertexId m = 3; m < 6; ++m)
    for (VertexId o = 6; o < 8; ++o) g.add_edge(m, o);
  const VertexId s[3] = {0, 1, 2}, t[2] = {6, 7};
  const auto paths = vertex_disjoint_paths(g.finalize(), s, t);
  EXPECT_EQ(paths.size(), 2u);
  std::vector<int> used(8, 0);
  for (const auto& p : paths) {
    EXPECT_GE(p.size(), 2u);
    EXPECT_LT(p.front(), 3u);
    EXPECT_GE(p.back(), 6u);
    for (VertexId v : p) {
      EXPECT_EQ(used[v], 0);
      used[v] = 1;
    }
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      bool edge_found = false;
      for (EdgeId e : g.out_edges(p[i]))
        edge_found |= g.edge(e).to == p[i + 1];
      EXPECT_TRUE(edge_found);
    }
  }
}

TEST(MengerPaths, SourceEqualsTargetSingleton) {
  GraphBuilder g(2);
  g.add_edge(0, 1);
  const VertexId s[1] = {0}, t[1] = {0};
  const auto paths = vertex_disjoint_paths(g.finalize(), s, t);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 1u);
}

TEST(HopcroftKarp, PerfectMatching) {
  BipartiteMatcher m(3, 3);
  for (std::uint32_t l = 0; l < 3; ++l)
    for (std::uint32_t r = 0; r < 3; ++r) m.add_edge(l, r);
  EXPECT_EQ(m.solve(), 3u);
  std::vector<int> used(3, 0);
  for (std::uint32_t l = 0; l < 3; ++l) {
    const auto r = m.match_of_left(l);
    ASSERT_LT(r, 3u);
    EXPECT_EQ(used[r], 0);
    used[r] = 1;
    EXPECT_EQ(m.match_of_right(r), l);
  }
}

TEST(HopcroftKarp, DeficientSide) {
  // Two lefts both only like right 0.
  BipartiteMatcher m(2, 2);
  m.add_edge(0, 0);
  m.add_edge(1, 0);
  EXPECT_EQ(m.solve(), 1u);
}

TEST(HopcroftKarp, AugmentingPathNeeded) {
  // l0-{r0}, l1-{r0,r1}: greedy could match l1-r0 and strand l0.
  BipartiteMatcher m(2, 2);
  m.add_edge(1, 0);
  m.add_edge(1, 1);
  m.add_edge(0, 0);
  EXPECT_EQ(m.solve(), 2u);
}

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteMatcher m(3, 3);
  EXPECT_EQ(m.solve(), 0u);
}

TEST(HopcroftKarp, SolveIdempotent) {
  BipartiteMatcher m(2, 2);
  m.add_edge(0, 1);
  EXPECT_EQ(m.solve(), 1u);
  EXPECT_EQ(m.solve(), 1u);
}

}  // namespace
}  // namespace ftcs::graph
