// Tests for the extension modules: closed-form bounds, rare-event
// importance sampling, Cantor networks, multibutterfly fault-avoiding
// routing, network serialization, and exact short probabilities.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "fault/fault_instance.hpp"
#include "ftcs/bounds.hpp"
#include "ftcs/ft_network.hpp"
#include "ftcs/verify.hpp"
#include "graph/algorithms.hpp"
#include "graph/io.hpp"
#include "networks/benes.hpp"
#include "networks/cantor.hpp"
#include "networks/multibutterfly.hpp"
#include "reliability/rare_event.hpp"
#include "reliability/reliability_dp.hpp"
#include "util/prng.hpp"

namespace ftcs {
namespace {

// ------------------------------------------------------------- bounds

TEST(Bounds, Lemma3ShrinksWithRowsAndEps) {
  using core::bounds::lemma3_failure;
  EXPECT_GT(lemma3_failure(1e-3, 2, 8), lemma3_failure(1e-3, 2, 16));
  EXPECT_GT(lemma3_failure(1e-2, 2, 8), lemma3_failure(1e-3, 2, 8));
  EXPECT_LE(lemma3_failure(1e-6, 2, 64), 1e-100);
  EXPECT_EQ(lemma3_failure(0.5, 2, 8), 1.0);  // saturates
}

TEST(Bounds, Lemma4PaperOperatingPoint) {
  // At eps = 1e-6 the bound reduces to ~ e^(-0.063 * 4^mu).
  using core::bounds::lemma4_failure;
  const double b1 = lemma4_failure(1e-6, 256);
  EXPECT_LT(b1, std::exp(-0.06 * 256) * 10);
  EXPECT_GT(lemma4_failure(1e-3, 256), b1);
  EXPECT_EQ(lemma4_failure(1.0, 1e9), 1.0);
}

TEST(Bounds, Lemma7QuadraticExponent) {
  using core::bounds::lemma7_failure;
  // Doubling nu roughly squares the (160 eps)^(2 nu) factor.
  const double e = 1e-6;
  const double r1 = lemma7_failure(e, 2);
  const double r2 = lemma7_failure(e, 4);
  EXPECT_LT(r2, r1 * r1 * 1e9);  // up to polynomial slack in c2 nu^2
  EXPECT_EQ(lemma7_failure(0.01, 1), std::min(1.0, lemma7_failure(0.01, 1)));
}

TEST(Bounds, Theorem2FailureVanishesAsNuGrows) {
  using core::bounds::theorem2_failure;
  // The paper's delta is only asymptotically small: the nu (2/e)^(2 nu)
  // union-bound term dominates at moderate nu and vanishes as n grows.
  const double rows = 64.0 * 1024;
  EXPECT_GT(theorem2_failure(1e-6, 8, rows), 1e-3);   // still visible at nu=8
  EXPECT_LT(theorem2_failure(1e-6, 30, rows), 1e-6);  // gone by nu=30
  double prev = 1.0;
  for (std::uint32_t nu = 4; nu <= 24; nu += 4) {
    const double f = theorem2_failure(1e-6, nu, rows);
    EXPECT_LT(f, prev);
    prev = f;
  }
  // Monotone in eps.
  EXPECT_LE(theorem2_failure(1e-7, 4, 4096), theorem2_failure(1e-5, 4, 4096));
}

TEST(Bounds, Theorem1Formulas) {
  using namespace core::bounds;
  EXPECT_NEAR(theorem1_depth_bound(512.0), 1.0, 1e-12);
  EXPECT_NEAR(theorem1_zone_bound(4096.0), 1.0, 1e-12);
  EXPECT_NEAR(theorem1_size_bound(1024.0), 1024.0 * 100 / 2592.0, 1e-9);
}

TEST(Bounds, Prop1Normalization) {
  const auto n = core::bounds::prop1_normalize(1e-6, 400.0, 20.0);
  const double l = std::log2(1e6);
  EXPECT_NEAR(n.size_constant, 400.0 / (l * l), 1e-12);
  EXPECT_NEAR(n.depth_constant, 20.0 / l, 1e-12);
}

// --------------------------------------------------------- rare events

graph::Network series_chain(std::size_t k) {
  graph::NetworkBuilder nb;
  nb.g.add_vertices(k + 1);
  for (graph::VertexId v = 0; v < k; ++v) nb.g.add_edge(v, v + 1);
  nb.inputs = {0};
  nb.outputs = {static_cast<graph::VertexId>(k)};
  return nb.finalize();
}

TEST(RareEvent, MatchesExactOnChain) {
  // P(short) of a k-chain = eps^k exactly.
  const auto net = series_chain(3);
  const double eps = 1e-3;
  const auto est = reliability::short_probability_importance(net, eps, 0.3,
                                                             200000, 9);
  EXPECT_GT(est.raw_hits, 1000u);  // biased sampling actually hits the event
  EXPECT_NEAR(est.probability / std::pow(eps, 3.0), 1.0, 0.15);
}

TEST(RareEvent, UnreachableByNaiveMonteCarlo) {
  // eps = 1e-6 on a 4-chain: true probability 1e-24; naive MC sees nothing,
  // importance sampling nails it within a few percent.
  const auto net = series_chain(4);
  const double eps = 1e-6;
  const double naive = reliability::short_probability_monte_carlo(
      net, fault::FaultModel{0.0, eps}, 100000, 3);
  EXPECT_EQ(naive, 0.0);
  const auto est = reliability::short_probability_importance(net, eps, 0.5,
                                                             300000, 11);
  EXPECT_NEAR(est.probability / 1e-24, 1.0, 0.1);
  EXPECT_LT(est.relative_error(), 0.2);
}

TEST(RareEvent, AgreesWithExactEnumeration) {
  // Small diamond where multiple shorts interact: exact 2^E enumeration is
  // ground truth for both estimators.
  graph::NetworkBuilder nb;
  nb.g.add_vertices(4);
  nb.g.add_edge(0, 1);
  nb.g.add_edge(1, 3);
  nb.g.add_edge(0, 2);
  nb.g.add_edge(2, 3);
  nb.inputs = {0};
  nb.outputs = {3};
  const double eps = 0.05;
  const graph::Network net = nb.finalize();
  const double exact =
      reliability::short_probability_exact(net, fault::FaultModel{0.0, eps});
  const auto is_est = reliability::short_probability_importance(net, eps, 0.3,
                                                                400000, 5);
  EXPECT_NEAR(is_est.probability, exact, exact * 0.1);
  const double mc = reliability::short_probability_monte_carlo(
      net, fault::FaultModel{0.0, eps}, 400000, 6);
  EXPECT_NEAR(mc, exact, 0.002);
}

TEST(RareEvent, SuggestBiasClamped) {
  EXPECT_GE(reliability::suggest_bias(100, 4), 1e-4);
  EXPECT_LE(reliability::suggest_bias(10, 100), 0.25);
  EXPECT_GT(reliability::suggest_bias(1000, 8), 0.01);
}

TEST(RareEvent, DominantTermOnChain) {
  // 3-chain: exactly one shortest terminal chain of length 3.
  const auto net = series_chain(3);
  const auto dom = reliability::dominant_short_term(net);
  EXPECT_EQ(dom.min_length, 3u);
  EXPECT_DOUBLE_EQ(dom.chain_count, 1.0);
  EXPECT_NEAR(dom.first_order(1e-3), 1e-9, 1e-15);
}

TEST(RareEvent, DominantTermCountsParallelChains) {
  // Two parallel 2-chains between the terminals: N = 2, L = 2.
  graph::NetworkBuilder nb;
  nb.g.add_vertices(4);
  nb.g.add_edge(0, 1);
  nb.g.add_edge(1, 3);
  nb.g.add_edge(0, 2);
  nb.g.add_edge(2, 3);
  nb.inputs = {0};
  nb.outputs = {3};
  const graph::Network net = nb.finalize();
  const auto dom = reliability::dominant_short_term(net);
  EXPECT_EQ(dom.min_length, 2u);
  EXPECT_DOUBLE_EQ(dom.chain_count, 2.0);
}

TEST(RareEvent, DominantTermMultiEdges) {
  // Parallel switches double the chain count.
  graph::NetworkBuilder nb;
  nb.g.add_vertices(3);
  nb.g.add_edge(0, 1);
  nb.g.add_edge(0, 1);
  nb.g.add_edge(1, 2);
  nb.inputs = {0};
  nb.outputs = {2};
  const graph::Network net = nb.finalize();
  const auto dom = reliability::dominant_short_term(net);
  EXPECT_EQ(dom.min_length, 2u);
  EXPECT_DOUBLE_EQ(dom.chain_count, 2.0);
}

TEST(RareEvent, DominantTermDisconnected) {
  graph::NetworkBuilder nb;
  nb.g.add_vertices(2);
  nb.inputs = {0};
  nb.outputs = {1};
  const graph::Network net = nb.finalize();
  const auto dom = reliability::dominant_short_term(net);
  EXPECT_EQ(dom.min_length, 0u);
  EXPECT_DOUBLE_EQ(dom.first_order(0.5), 0.0);
}

TEST(RareEvent, DominantTermApproximatesExact) {
  // On a small gadget at small eps the first-order term is within ~eps of
  // the exact probability (relative).
  const auto net = series_chain(4);
  const double eps = 1e-3;
  const auto dom = reliability::dominant_short_term(net);
  const double exact =
      reliability::short_probability_exact(net, fault::FaultModel{0, eps});
  EXPECT_NEAR(dom.first_order(eps) / exact, 1.0, 0.01);
}

TEST(RareEvent, DominantTermFtScaling) {
  // On the FT network the shortest terminal chain has 2 nu + 2 switches
  // (down one grid, across one expander column, back up a sibling grid).
  for (std::uint32_t nu : {1u, 2u}) {
    const auto ft = core::build_ft_network(core::FtParams::sim(nu, 4, 6, 1, 2));
    const auto dom = reliability::dominant_short_term(ft.net);
    EXPECT_EQ(dom.min_length, 2 * nu + 2) << "nu=" << nu;
    EXPECT_GT(dom.chain_count, 0.0);
  }
}

TEST(RareEvent, ExactRejectsLargeNetworks) {
  const networks::Benes b(3);
  EXPECT_THROW((void)reliability::short_probability_exact(
                   b.network(), fault::FaultModel{0, 0.1}),
               std::invalid_argument);
}

// -------------------------------------------------------------- cantor

TEST(Cantor, StructureAndSize) {
  const auto net = networks::build_cantor({3, 0});
  EXPECT_EQ(net.inputs.size(), 8u);
  EXPECT_EQ(net.outputs.size(), 8u);
  // 3 Benes copies of 96 edges + 2 * 8 * 3 terminal edges.
  EXPECT_EQ(net.g.edge_count(), 3u * 96 + 48);
  EXPECT_EQ(net.validate(), "");
  EXPECT_TRUE(graph::is_dag(net.g));
  EXPECT_EQ(graph::network_depth(net), 2u * 3 + 2);
}

TEST(Cantor, SizeLawNLogSquared) {
  // size / (n log2^2 n) should stay bounded across sizes.
  for (std::uint32_t k : {3u, 5u, 7u}) {
    const auto net = networks::build_cantor({k, 0});
    const double n = std::pow(2.0, k);
    const double law = n * k * k;
    const double ratio = static_cast<double>(net.g.edge_count()) / law;
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 7.0);
  }
}

TEST(Cantor, StrictlyNonblockingUnderChurn) {
  // Cantor's theorem: k copies suffice for strict nonblockingness.
  const auto net = networks::build_cantor({3, 0});
  const auto churn = core::nonblocking_churn(net, 1500, 5);
  EXPECT_GT(churn.connects, 300u);
  EXPECT_EQ(churn.failures, 0u);
}

TEST(Cantor, SingleCopyIsNotNonblocking) {
  // One copy = a Beneš with fan-in/out: rearrangeable only.
  const auto net = networks::build_cantor({3, 1});
  const auto churn = core::nonblocking_churn(net, 4000, 7);
  EXPECT_GT(churn.failures, 0u);
}

// ------------------------------------------------- multibutterfly routes

TEST(MultibutterflyRoute, FaultFreeAlwaysRoutes) {
  const std::uint32_t k = 4;
  const auto net = networks::build_multibutterfly({k, 2, 3});
  for (std::uint32_t in = 0; in < 16; ++in)
    for (std::uint32_t out = 0; out < 16; ++out) {
      const auto path = networks::multibutterfly_route(net, k, in, out);
      ASSERT_TRUE(path.has_value());
      ASSERT_EQ(path->size(), k + 1);
      EXPECT_EQ(path->front(), net.inputs[in]);
      EXPECT_EQ(path->back(), net.outputs[out]);
      // Edges exist.
      for (std::size_t i = 0; i + 1 < path->size(); ++i) {
        bool found = false;
        for (graph::EdgeId e : net.g.out_edges((*path)[i]))
          found |= net.g.edge(e).to == (*path)[i + 1];
        ASSERT_TRUE(found);
      }
    }
}

TEST(MultibutterflyRoute, RoutesAroundFaults) {
  const std::uint32_t k = 5;
  const auto net = networks::build_multibutterfly({k, 2, 9});
  fault::FaultInstance inst(net, fault::FaultModel::symmetric(2e-3), 3);
  const auto faulty = inst.faulty_non_terminal_mask();
  std::size_t routed = 0, total = 0;
  for (std::uint32_t in = 0; in < 32; ++in)
    for (std::uint32_t out = 0; out < 32; ++out) {
      ++total;
      if (networks::multibutterfly_route(net, k, in, out, faulty)) ++routed;
    }
  // Leighton–Maggs: sparse random faults leave almost all pairs routable.
  EXPECT_GT(routed * 100, total * 95);
}

TEST(MultibutterflyRoute, BlockedSplitterKillsRoute) {
  const std::uint32_t k = 3;
  const auto net = networks::build_multibutterfly({k, 2, 5});
  // Block the entire top half of stage 1: outputs 4..7 unreachable from
  // anywhere (they require the upper half at stage 1)... rows with bit k-1
  // = 0 are the upper half (toward outputs 0..3).
  std::vector<std::uint8_t> blocked(net.g.vertex_count(), 0);
  for (std::uint32_t row = 0; row < 4; ++row) blocked[1 * 8 + row] = 1;
  EXPECT_FALSE(networks::multibutterfly_route(net, k, 0, 0, blocked).has_value());
  EXPECT_TRUE(networks::multibutterfly_route(net, k, 0, 7, blocked).has_value());
}

// ------------------------------------------------------------------ io

TEST(Io, RoundTripPreservesStructure) {
  const networks::Benes b(3);
  std::stringstream ss;
  graph::write_network(ss, b.network());
  const auto back = graph::read_network(ss);
  EXPECT_TRUE(graph::structurally_equal(b.network(), back));
  EXPECT_EQ(back.name, b.network().name);
}

TEST(Io, RoundTripWithoutStages) {
  graph::NetworkBuilder nb;
  nb.g.add_vertices(3);
  nb.g.add_edge(0, 1);
  nb.g.add_edge(1, 2);
  nb.inputs = {0};
  nb.outputs = {2};
  nb.name = "tiny";
  std::stringstream ss;
  const graph::Network net = nb.finalize();
  graph::write_network(ss, net);
  const auto back = graph::read_network(ss);
  EXPECT_TRUE(graph::structurally_equal(net, back));
  EXPECT_TRUE(back.stage.empty());
}

TEST(Io, RejectsMalformedInput) {
  {
    std::stringstream ss("not-a-network 1");
    EXPECT_THROW(graph::read_network(ss), std::runtime_error);
  }
  {
    std::stringstream ss("ftcs-network 2");
    EXPECT_THROW(graph::read_network(ss), std::runtime_error);
  }
  {
    std::stringstream ss(
        "ftcs-network 1\nname x\nvertices 2\ninputs 5\noutputs 1\nstages -\n"
        "edges 0\n");
    EXPECT_THROW(graph::read_network(ss), std::runtime_error);
  }
  {
    std::stringstream ss(
        "ftcs-network 1\nname x\nvertices 2\ninputs 0\noutputs 1\nstages -\n"
        "edges 1\n0 9\n");
    EXPECT_THROW(graph::read_network(ss), std::runtime_error);
  }
}

TEST(Io, DotContainsAllEdges) {
  graph::NetworkBuilder nb;
  nb.g.add_vertices(3);
  nb.g.add_edge(0, 1);
  nb.g.add_edge(1, 2);
  nb.inputs = {0};
  nb.outputs = {2};
  nb.stage = {0, 1, 2};
  std::stringstream ss;
  const graph::Network net = nb.finalize();
  graph::write_dot(ss, net);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("v1 -> v2"), std::string::npos);
  EXPECT_NE(dot.find("rank=same"), std::string::npos);
  EXPECT_NE(dot.find("lightblue"), std::string::npos);
}

TEST(Io, StructuralEqualityDetectsDifferences) {
  graph::NetworkBuilder ab;
  ab.g.add_vertices(2);
  ab.g.add_edge(0, 1);
  ab.inputs = {0};
  ab.outputs = {1};
  const graph::Network a = ab.finalize();
  EXPECT_TRUE(graph::structurally_equal(a, ab.finalize()));
  ab.g.add_edge(0, 1);
  EXPECT_FALSE(graph::structurally_equal(a, ab.finalize()));
}

}  // namespace
}  // namespace ftcs
