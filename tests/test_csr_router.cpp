// CSR-core and router hot-path tests for the two-phase graph lifecycle:
//  - GraphBuilder -> CsrGraph round-trip equivalence on random multigraphs;
//  - router determinism (same seed + request sequence -> identical paths)
//    and shortest-path equivalence against graph::shortest_path, the
//    reference implementation the pre-CSR router was built on;
//  - connect()/disconnect() perform no heap allocation after construction,
//    verified by a counting global operator new.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "ftcs/router.hpp"
#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "networks/cantor.hpp"
#include "networks/superconcentrator.hpp"
#include "util/prng.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

// Counting allocator hooks: every global new is tallied so tests can assert
// a region of code allocates nothing. GCC's -Wmismatched-new-delete cannot
// see that these replacement operators pair malloc/aligned_alloc with free
// consistently, so the (false-positive) diagnostic is silenced here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  ++g_alloc_count;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al), size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace ftcs {
namespace {

graph::GraphBuilder random_multigraph(std::size_t vertices, std::size_t edges,
                                      std::uint64_t seed) {
  graph::GraphBuilder b(vertices);
  util::Xoshiro256 rng(seed);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto from = static_cast<graph::VertexId>(rng.below(vertices));
    auto to = static_cast<graph::VertexId>(rng.below(vertices));
    if (to == from) to = (to + 1) % vertices;  // no self-loops
    b.add_edge(from, to);
  }
  return b;
}

TEST(CsrRoundTrip, EquivalentToIncidenceListsOnRandomMultigraphs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto b = random_multigraph(40 + seed * 13, 200 + seed * 57, seed);
    const graph::CsrGraph g = b.finalize();
    ASSERT_EQ(g.vertex_count(), b.vertex_count());
    ASSERT_EQ(g.edge_count(), b.edge_count());
    for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(g.edge(e).from, b.edge(e).from);
      EXPECT_EQ(g.edge(e).to, b.edge(e).to);
    }
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
      ASSERT_EQ(g.out_degree(v), b.out_degree(v));
      ASSERT_EQ(g.in_degree(v), b.in_degree(v));
      EXPECT_EQ(g.degree(v), b.degree(v));
      const auto bo = b.out_edges(v);
      const auto go = g.out_edges(v);
      const auto gt = g.out_targets(v);
      for (std::size_t i = 0; i < bo.size(); ++i) {
        EXPECT_EQ(go[i], bo[i]);  // same edge ids, same incidence order
        EXPECT_EQ(gt[i], g.edge(bo[i]).to);
      }
      const auto bi = b.in_edges(v);
      const auto gi = g.in_edges(v);
      const auto gs = g.in_sources(v);
      for (std::size_t i = 0; i < bi.size(); ++i) {
        EXPECT_EQ(gi[i], bi[i]);
        EXPECT_EQ(gs[i], g.edge(bi[i]).from);
      }
    }
  }
}

TEST(CsrRoundTrip, EmptyAndIsolatedVertices) {
  graph::GraphBuilder b;
  EXPECT_EQ(b.finalize().vertex_count(), 0u);
  b.add_vertices(5);
  const auto g = b.finalize();
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  for (graph::VertexId v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.out_edges(v).empty());
    EXPECT_TRUE(g.in_edges(v).empty());
  }
}

// Drives a deterministic churn against a router and records every accepted
// path; used for determinism and shortest-path equivalence checks.
std::vector<std::vector<graph::VertexId>> churn_paths(
    const graph::Network& net, std::uint64_t seed, std::size_t ops,
    bool check_shortest) {
  core::GreedyRouter router(net);
  util::Xoshiro256 rng(seed);
  const auto n = static_cast<std::uint32_t>(net.inputs.size());
  std::vector<core::GreedyRouter::CallId> active;
  std::vector<std::vector<graph::VertexId>> paths;
  for (std::size_t op = 0; op < ops; ++op) {
    if (!active.empty() && rng.below(4) == 0) {
      const auto idx = rng.below(active.size());
      router.disconnect(active[idx]);
      active[idx] = active.back();
      active.pop_back();
      continue;
    }
    const auto in = static_cast<std::uint32_t>(rng.below(n));
    const auto out = static_cast<std::uint32_t>(rng.below(n));
    std::vector<std::uint8_t> busy_before;
    if (check_shortest) busy_before = router.busy_mask();
    const auto call = router.connect(in, out);
    if (call == core::GreedyRouter::kNoCall) {
      if (check_shortest && router.input_idle(in) && router.output_idle(out)) {
        // The reference search must agree that no idle path exists.
        std::vector<std::uint8_t> target(net.g.vertex_count(), 0);
        target[net.outputs[out]] = 1;
        const graph::VertexId srcs[1] = {net.inputs[in]};
        EXPECT_FALSE(
            graph::shortest_path(net.g, srcs, target, busy_before).has_value());
      }
      continue;
    }
    const auto path = router.path_of(call);
    EXPECT_EQ(path.size(), router.path_length(call));
    EXPECT_EQ(path.front(), net.inputs[in]);
    EXPECT_EQ(path.back(), net.outputs[out]);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      bool edge_found = false;
      for (graph::VertexId t : net.g.out_targets(path[i]))
        edge_found |= t == path[i + 1];
      EXPECT_TRUE(edge_found) << "settled path skips a missing edge";
    }
    if (check_shortest) {
      // The bidirectional search must settle a path exactly as short as the
      // reference single-direction BFS would find on the same busy state.
      std::vector<std::uint8_t> target(net.g.vertex_count(), 0);
      target[net.outputs[out]] = 1;
      const graph::VertexId srcs[1] = {net.inputs[in]};
      const auto ref = graph::shortest_path(net.g, srcs, target, busy_before);
      EXPECT_TRUE(ref.has_value());
      if (ref) {
        EXPECT_EQ(path.size(), ref->size());
      }
    }
    paths.push_back(path);
    active.push_back(call);
  }
  return paths;
}

TEST(RouterDeterminism, SameSeedSameRequestsIdenticalPaths) {
  const auto net = networks::build_cantor({4, 0});
  const auto a = churn_paths(net, 99, 400, false);
  const auto b = churn_paths(net, 99, 400, false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(RouterDeterminism, SettlesShortestIdlePathsLikeReferenceBfs) {
  // Cantor: uniform path lengths; superconcentrator: direct input->output
  // edges compete with long recursive detours, so shortest-ness is a real
  // constraint here.
  churn_paths(networks::build_cantor({4, 0}), 7, 300, true);
  churn_paths(networks::build_superconcentrator({32, 4, 4, 11}), 8, 300, true);
}

TEST(RouterStatsBlock, CountsAddUp) {
  const auto net = networks::build_cantor({4, 0});
  core::GreedyRouter router(net);
  const auto c1 = router.connect(0, 1);
  ASSERT_NE(c1, core::GreedyRouter::kNoCall);
  EXPECT_EQ(router.connect(0, 2), core::GreedyRouter::kNoCall);  // input busy
  router.disconnect(c1);
  const auto& s = router.stats();
  EXPECT_EQ(s.connect_calls, 2u);
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.rejected_terminal, 1u);
  EXPECT_EQ(s.disconnects, 1u);
  EXPECT_GT(s.vertices_visited, 0u);
  EXPECT_EQ(s.path_vertices, router.stats().path_vertices);
  EXPECT_GE(s.path_vertices, 2u);
  router.reset_stats();
  EXPECT_EQ(router.stats().connect_calls, 0u);
}

TEST(RouterDeterminism, RejectsTerminalBusyAsIntermediateHop) {
  // 0 -> 1 -> 2 and 1 -> 3, with vertex 1 both an input and an interior hop.
  // Once call (0,0) settles 0-1-2, input 1 is busy as an intermediate; a
  // second call from it must be rejected — the per-vertex successor array
  // stores at most one call per vertex, so admitting it would corrupt both.
  graph::NetworkBuilder nb;
  nb.g.add_vertices(4);
  nb.g.add_edge(0, 1);
  nb.g.add_edge(1, 2);
  nb.g.add_edge(1, 3);
  nb.inputs = {0, 1};
  nb.outputs = {2, 3};
  const auto net = nb.finalize();
  core::GreedyRouter router(net);
  const auto c1 = router.connect(0, 0);
  ASSERT_NE(c1, core::GreedyRouter::kNoCall);
  EXPECT_EQ(router.path_of(c1), (std::vector<graph::VertexId>{0, 1, 2}));
  EXPECT_EQ(router.connect(1, 1), core::GreedyRouter::kNoCall);
  router.disconnect(c1);
  EXPECT_EQ(router.busy_vertices(), 0u);
  const auto c2 = router.connect(1, 1);
  ASSERT_NE(c2, core::GreedyRouter::kNoCall);
  EXPECT_EQ(router.path_of(c2), (std::vector<graph::VertexId>{1, 3}));
}

TEST(RouterHotPath, ConnectPerformsNoHeapAllocation) {
  const auto net = networks::build_cantor({5, 0});
  core::GreedyRouter router(net);
  const auto n = static_cast<std::uint32_t>(net.inputs.size());
  util::Xoshiro256 rng(42);
  std::vector<core::GreedyRouter::CallId> active;
  active.reserve(n);
  // Warmup: touch every slot-bookkeeping path once.
  for (std::uint32_t i = 0; i < n / 2; ++i) {
    const auto c = router.connect(i, (i * 5 + 2) % n);
    if (c != core::GreedyRouter::kNoCall) active.push_back(c);
  }
  for (auto c : active) router.disconnect(c);
  active.clear();

  const std::uint64_t allocs_before = g_alloc_count.load();
  for (std::size_t op = 0; op < 2000; ++op) {
    if (!active.empty() && rng.below(3) == 0) {
      const auto idx = rng.below(active.size());
      router.disconnect(active[idx]);
      active[idx] = active.back();
      active.pop_back();
    } else {
      const auto c = router.connect(static_cast<std::uint32_t>(rng.below(n)),
                                    static_cast<std::uint32_t>(rng.below(n)));
      if (c != core::GreedyRouter::kNoCall) active.push_back(c);
    }
  }
  EXPECT_EQ(g_alloc_count.load(), allocs_before)
      << "connect()/disconnect() allocated on the hot path";
}

}  // namespace
}  // namespace ftcs
