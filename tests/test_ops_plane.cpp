// The operator control plane: LatencyHistogram/QoS books, the MPSC
// CommandQueue with typed acks, ControlPlane command execution at epoch
// boundaries, MetricsRegistry export (Prometheus + JSON, totals + deltas),
// the RejectReason round-trip, and the acceptance-criteria churn — 4
// sessions serving calls while a separate operator thread pumps
// inject/repair/query/snapshot commands through the queue. (Carries the
// `tsan` ctest label.)
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/schedule.hpp"
#include "networks/cantor.hpp"
#include "networks/crossbar.hpp"
#include "ops/command_queue.hpp"
#include "ops/control.hpp"
#include "ops/latency.hpp"
#include "ops/metrics.hpp"
#include "svc/exchange.hpp"
#include "util/prng.hpp"

namespace ftcs {
namespace {

using fault::FaultEvent;

TEST(LatencyHistogram, BucketsQuantilesAndMergeability) {
  ops::LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  // 90 samples at ~1us, 10 at ~1ms: p50 lands in the microsecond bucket,
  // p99 in the millisecond one. Log-scale buckets promise the answer within
  // one 2x bucket of the truth.
  for (int i = 0; i < 90; ++i) h.record(1.0e-6);
  for (int i = 0; i < 10; ++i) h.record(1.0e-3);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum_seconds(), 90.0e-6 + 10.0e-3, 1e-9);
  EXPECT_GT(h.quantile(0.50), 0.5e-6);
  EXPECT_LT(h.quantile(0.50), 2.1e-6);
  EXPECT_GT(h.quantile(0.99), 0.5e-3);
  EXPECT_LT(h.quantile(0.99), 2.1e-3);
  // Quantiles are monotone in q.
  EXPECT_LE(h.quantile(0.1), h.quantile(0.9));

  // Mergeable like RouterStats: += aggregates, -= recovers the delta.
  ops::LatencyHistogram a = h;
  a += h;
  EXPECT_EQ(a.count(), 200u);
  a -= h;
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.quantile(0.5), h.quantile(0.5));

  // Extremes clip into the outermost buckets instead of overflowing.
  ops::LatencyHistogram x;
  x.record(0.0);
  x.record(1e9);
  EXPECT_EQ(x.count(), 2u);
  EXPECT_GT(x.quantile(1.0), 100.0);  // deep in the last bucket
}

TEST(LatencyHistogram, QosClassMappingClampsHighPriorities) {
  EXPECT_EQ(ops::qos_class(0), 0u);
  EXPECT_EQ(ops::qos_class(1), 1u);
  EXPECT_EQ(ops::qos_class(3), 3u);
  EXPECT_EQ(ops::qos_class(200), ops::kQosClasses - 1);
}

TEST(RejectReason, ToStringRoundTripsOverAllEnumerators) {
  std::set<std::string> spellings;
  for (const svc::RejectReason r : svc::kAllRejectReasons) {
    const std::string s = to_string(r);
    EXPECT_NE(s, "unknown");
    EXPECT_TRUE(spellings.insert(s).second) << "duplicate spelling " << s;
    const auto back = svc::reject_reason_from_string(s);
    ASSERT_TRUE(back.has_value()) << s;
    EXPECT_EQ(*back, r);
  }
  EXPECT_EQ(spellings.size(), svc::kRejectReasonCount);
  EXPECT_FALSE(svc::reject_reason_from_string("bogus").has_value());
  EXPECT_FALSE(svc::reject_reason_from_string("unknown").has_value());
}

TEST(ExchangeQos, BatchedPlaneKeepsPerClassBooksAndSlaViolations) {
  const auto net = networks::build_crossbar(8);
  svc::ExchangeConfig cfg;
  // Class 2 carries an impossible SLA (1ns): every served class-2 call
  // violates it. Class 0 carries a lavish one nothing violates.
  cfg.class_deadlines = {60.0, 0.0, 1e-9, 0.0};
  svc::Exchange ex(net, std::move(cfg));

  // Two calls per class; the second class-3 call collides on terminals with
  // the first (same input), producing a typed per-class reject.
  for (std::uint8_t pri = 0; pri < 4; ++pri) {
    ex.submit({0u + pri, 0u + pri, pri, 0});
    ex.submit({pri == 3 ? 3u : 4u + pri, 4u + pri, pri, 0});
  }
  ex.drain_all();
  const auto st = ex.stats();
  EXPECT_EQ(st.classes[0].served, 2u);
  EXPECT_EQ(st.classes[0].sla_violations, 0u);
  EXPECT_EQ(st.classes[1].served, 2u);
  EXPECT_EQ(st.classes[2].served, 2u);
  EXPECT_EQ(st.classes[2].sla_violations, 2u);  // the 1ns deadline
  EXPECT_EQ(st.classes[3].served, 1u);
  EXPECT_EQ(st.classes[3].rejected, 1u);  // terminal-busy collision
  EXPECT_EQ(st.classes[0].setup.count(), 2u);
  EXPECT_GT(st.classes[0].setup.quantile(0.5), 0.0);
  // The books survive the stats delta convention.
  auto delta = ex.stats();
  delta -= st;
  EXPECT_EQ(delta.classes[2].served, 0u);
}

TEST(ExchangeQos, ImmediatePlaneBooksAreOptIn) {
  const auto net = networks::build_crossbar(4);
  {
    svc::Exchange ex(net);  // default: immediate plane keeps no books
    const auto o = ex.call({0, 0, 1, 0});
    ASSERT_TRUE(o.connected());
    EXPECT_EQ(ex.stats().classes[1].served, 0u);
    ex.hangup(o.id);
  }
  svc::ExchangeConfig cfg;
  cfg.qos_immediate = true;
  cfg.class_deadlines = {0.0, 1e-9, 0.0, 0.0};
  svc::Exchange ex(net, std::move(cfg));
  const auto o = ex.call({0, 0, 1, 0});
  ASSERT_TRUE(o.connected());
  const auto busy = ex.call({0, 1, 1, 0});  // same input: typed reject
  EXPECT_FALSE(busy.connected());
  const auto st = ex.stats();
  EXPECT_EQ(st.classes[1].served, 1u);
  EXPECT_EQ(st.classes[1].rejected, 1u);
  EXPECT_EQ(st.classes[1].sla_violations, 1u);
  ex.hangup(o.id);
}

TEST(CommandQueue, PostAckDepthAndTakeOnce) {
  ops::CommandQueue q;
  EXPECT_EQ(q.depth(), 0u);
  const auto t1 = q.post({ops::CommandKind::kQuery, {}, 0});
  const auto t2 = q.post({ops::CommandKind::kGrow, {}, 16});
  EXPECT_NE(t1, 0u);
  EXPECT_NE(t1, t2);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_FALSE(q.try_ack(t1).has_value());  // not executed yet

  auto taken = q.take_all();
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].ticket, t1);
  EXPECT_EQ(taken[1].cmd.arg, 16u);
  EXPECT_EQ(q.depth(), 0u);

  ops::Ack a;
  a.kind = taken[1].cmd.kind;
  a.status = ops::AckStatus::kUnsupported;
  q.deliver(t2, a);
  const auto got = q.wait(t2);
  EXPECT_EQ(got.status, ops::AckStatus::kUnsupported);
  EXPECT_FALSE(q.try_ack(t2).has_value());  // take-once
}

TEST(ControlPlane, ExecutesEveryCommandKindWithTypedAcks) {
  const auto net = networks::build_crossbar(6);
  svc::Exchange ex(net);
  ops::ControlPlane control(ex, "t0");

  // A live call the inject will kill: crossbar switch (0,0) is input 0's
  // only route to output 0.
  const auto victim = ex.call({0, 0, 0, 77});
  ASSERT_TRUE(victim.connected());
  const auto e00 = net.g.out_edges(net.inputs[0])[0];

  auto& q = control.queue();
  const auto t_inject =
      q.post({ops::CommandKind::kInject, {0.0, e00, FaultEvent::Kind::kFail}, 0});
  const auto t_again =
      q.post({ops::CommandKind::kInject, {0.0, e00, FaultEvent::Kind::kFail}, 0});
  const auto t_grow = q.post({ops::CommandKind::kGrow, {}, 8});
  const auto t_query = q.post({ops::CommandKind::kQuery, {}, 0});
  EXPECT_EQ(control.pump(), 4u);

  const auto a_inject = q.wait(t_inject);
  EXPECT_EQ(a_inject.status, ops::AckStatus::kOk);
  EXPECT_EQ(a_inject.calls_killed, 1u);
  ASSERT_EQ(a_inject.killed.size(), 1u);
  EXPECT_EQ(a_inject.killed[0].tag, 77u);
  EXPECT_EQ(a_inject.killed[0].reject, svc::RejectReason::kFaulted);
  ASSERT_EQ(a_inject.reroutes.size(), 1u);
  // Output 0 is only reachable through the dead switch: the reroute fails.
  EXPECT_EQ(a_inject.reroute_failed, 1u);
  EXPECT_EQ(a_inject.failed_switches, 1u);

  const auto a_again = q.wait(t_again);
  EXPECT_EQ(a_again.status, ops::AckStatus::kNoop);  // idempotent
  EXPECT_EQ(a_again.calls_killed, 0u);

  const auto a_grow = q.wait(t_grow);
  EXPECT_EQ(a_grow.status, ops::AckStatus::kUnsupported);
  EXPECT_FALSE(a_grow.text.empty());

  const auto a_query = q.wait(t_query);
  EXPECT_EQ(a_query.stats.faults_injected, 1u);
  EXPECT_EQ(a_query.stats.calls_killed_by_fault, 1u);
  EXPECT_EQ(a_query.active_calls, 0u);

  // Repair, then quiesce a queued submission through the feed.
  const auto t_repair = q.post(
      {ops::CommandKind::kRepair, {1.0, e00, FaultEvent::Kind::kRepair}, 0});
  ex.submit({0, 0, 0, 88});
  const auto t_q = q.post({ops::CommandKind::kQuiesce, {}, 0});
  const auto t_snap =
      q.post({ops::CommandKind::kSnapshot, {},
              static_cast<std::uint64_t>(ops::SnapshotFormat::kPrometheus)});
  control.pump();
  EXPECT_EQ(q.wait(t_repair).failed_switches, 0u);
  const auto a_q = q.wait(t_q);
  EXPECT_EQ(a_q.drained, 1u);
  EXPECT_EQ(a_q.pending, 0u);
  const auto a_snap = q.wait(t_snap);
  EXPECT_NE(a_snap.text.find("ftcs_shorted"), std::string::npos);
  EXPECT_NE(a_snap.text.find("ftcs_setup_latency_seconds_bucket"),
            std::string::npos);
}

TEST(MetricsRegistry, DeltasBetweenScrapesAndBothFormats) {
  const auto net = networks::build_crossbar(4);
  svc::Exchange ex(net);
  ops::MetricsRegistry reg("mx");

  ex.submit({0, 0, 2, 0});
  ex.drain_all();
  const auto s1 = reg.sample(ex);
  EXPECT_EQ(s1.scrape_seq, 1u);
  EXPECT_EQ(s1.total.admitted, 1u);
  EXPECT_EQ(s1.delta.admitted, 1u);  // first delta == totals

  ex.submit({1, 1, 2, 0});
  ex.submit({2, 2, 2, 0});
  ex.drain_all();
  const auto s2 = reg.sample(ex);
  EXPECT_EQ(s2.total.admitted, 3u);
  EXPECT_EQ(s2.delta.admitted, 2u);  // only the inter-scrape activity
  EXPECT_EQ(s2.delta.classes[2].served, 2u);

  const std::string prom = reg.prometheus(s2);
  EXPECT_NE(prom.find("# TYPE ftcs_calls_admitted_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("ftcs_calls_admitted_total{exchange=\"mx\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("ftcs_rejects_total"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("ftcs_setup_latency_p99_seconds"), std::string::npos);

  const std::string js = reg.json(s2);
  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(js.back(), '}');
  EXPECT_NE(js.find("\"delta\""), std::string::npos);
  EXPECT_NE(js.find("\"classes\""), std::string::npos);
  EXPECT_NE(js.find("\"scrape_seq\":2"), std::string::npos);
}

// Acceptance criteria: 4 sessions of churn while a separate operator thread
// pumps inject/repair/query/snapshot commands through ops::CommandQueue —
// no races, acks match effects, busy state balances after the final drain.
// The pump runs on its own thread holding the plane exclusively (the drain
// contract); churn threads ALSO post queries mid-flight, exercising the
// multi-producer side of the queue. TSan-run.
TEST(OpsControlPlane, OperatorCommandsRaceChurningSessionsSafely) {
  const auto net = networks::build_cantor({5, 0});
  constexpr unsigned kSessions = 4;
  svc::ExchangeConfig cfg;
  cfg.backend = svc::Backend::kConcurrent;
  cfg.sessions = kSessions;
  cfg.qos_immediate = true;
  cfg.class_deadlines = {0.0, 0.0, 0.0, 1e-9};
  svc::Exchange ex(net, std::move(cfg));
  ops::ControlPlane control(ex, "churn");
  const auto n = static_cast<std::uint32_t>(net.inputs.size());

  const auto schedule = fault::FaultSchedule::from_model(
      fault::FaultModel::symmetric(4e-4), net.g.edge_count(),
      /*horizon=*/250.0, /*mean_repair=*/15.0, /*seed=*/97);
  ASSERT_GT(schedule.fail_count(), 10u);

  std::shared_mutex plane;  // sessions shared, the pump exclusive
  std::atomic<int> posters{static_cast<int>(kSessions) + 1};
  std::vector<std::vector<svc::CallId>> leftover(kSessions);
  std::vector<svc::Outcome> strays;  // connected reroutes (operator-owned)

  std::vector<std::thread> threads;
  threads.reserve(kSessions + 2);
  for (unsigned s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      util::Xoshiro256 rng(util::derive_seed(811, s));
      std::vector<svc::Outcome> mine;
      for (int op = 0; op < 2000; ++op) {
        {
          std::shared_lock<std::shared_mutex> lk(plane);
          if (!mine.empty() && (rng() & 3u) == 0) {
            const auto idx = rng() % mine.size();
            const svc::RejectReason r = ex.hangup(mine[idx].id);
            EXPECT_TRUE(r == svc::RejectReason::kNone ||
                        r == svc::RejectReason::kFaulted ||
                        r == svc::RejectReason::kStaleHandle)
                << to_string(r);
            mine[idx] = mine.back();
            mine.pop_back();
          } else {
            const auto in = static_cast<std::uint32_t>(rng() % n);
            const auto out = static_cast<std::uint32_t>(rng() % n);
            const auto pri = static_cast<std::uint8_t>(rng() & 3u);
            const svc::Outcome o = ex.call({in, out, pri, 0}, s);
            if (o.connected()) mine.push_back(o);
          }
        }
        // Multi-producer side: churn threads query the control plane too.
        // Posted and awaited OUTSIDE the plane lock — a waiter holding even
        // the shared lock would deadlock the exclusive pump.
        if (op % 500 == 499) {
          const auto t =
              control.queue().post({ops::CommandKind::kQuery, {}, 0});
          const auto ack = control.queue().wait(t);
          EXPECT_EQ(ack.kind, ops::CommandKind::kQuery);
        }
      }
      for (const auto& o : mine) leftover[s].push_back(o.id);
      posters.fetch_sub(1, std::memory_order_release);
    });
  }

  // The operator: drives the storm through the command feed, checks every
  // ack against the effect it reports.
  threads.emplace_back([&] {
    std::uint64_t last_accepted = 0;
    int i = 0;
    for (const auto& ev : schedule.events()) {
      ops::Command cmd;
      cmd.kind = ev.kind == FaultEvent::Kind::kRepair
                     ? ops::CommandKind::kRepair
                     : ops::CommandKind::kInject;
      cmd.event = ev;
      const auto ack = control.queue().wait(control.queue().post(cmd));
      EXPECT_TRUE(ack.status == ops::AckStatus::kOk ||
                  ack.status == ops::AckStatus::kNoop);
      EXPECT_EQ(ack.calls_killed,
                ack.reroute_succeeded + ack.reroute_failed);
      EXPECT_EQ(ack.killed.size(), ack.reroutes.size());
      for (const auto& re : ack.reroutes) {
        if (re.connected()) strays.push_back(re);
      }
      if (ack.alarm) {
        EXPECT_EQ(ack.alarm->raised, ack.shorted);
      }
      if (++i % 16 == 0) {
        const auto q = control.queue().wait(
            control.queue().post({ops::CommandKind::kQuery, {}, 0}));
        EXPECT_GE(q.stats.router.accepted, last_accepted);  // monotone
        last_accepted = q.stats.router.accepted;
      }
      if (i % 64 == 0) {
        const auto snap = control.queue().wait(control.queue().post(
            {ops::CommandKind::kSnapshot, {},
             static_cast<std::uint64_t>(ops::SnapshotFormat::kJson)}));
        EXPECT_EQ(snap.text.front(), '{');
      }
    }
    posters.fetch_sub(1, std::memory_order_release);
  });

  // The pump: the one thread executing commands, under the drain contract.
  threads.emplace_back([&] {
    for (;;) {
      const bool last_round = posters.load(std::memory_order_acquire) == 0;
      {
        std::unique_lock<std::shared_mutex> lk(plane);
        control.pump();
      }
      if (last_round && control.queue().depth() == 0) break;
      std::this_thread::yield();
    }
  });

  for (auto& th : threads) th.join();

  // Quiescent wind-down: this thread owns everything now.
  control.queue().post({ops::CommandKind::kQuiesce, {}, 0});
  control.pump();
  for (const auto& session_calls : leftover)
    for (const auto id : session_calls) {
      const svc::RejectReason r = ex.hangup(id);
      EXPECT_TRUE(r == svc::RejectReason::kNone ||
                  r == svc::RejectReason::kFaulted ||
                  r == svc::RejectReason::kStaleHandle)
          << to_string(r);
    }
  for (const auto& o : strays) {
    const svc::RejectReason r = ex.hangup(o.id);
    EXPECT_TRUE(r == svc::RejectReason::kNone ||
                r == svc::RejectReason::kFaulted ||
                r == svc::RejectReason::kStaleHandle)
        << to_string(r);
  }
  EXPECT_EQ(ex.active_calls(), 0u);
  EXPECT_EQ(ex.busy_vertices(), 0u);
  const svc::ExchangeStats st = ex.stats();
  EXPECT_EQ(st.router.accepted, st.hangups + st.calls_killed_by_fault);
  EXPECT_EQ(st.calls_killed_by_fault,
            st.reroute_succeeded + st.reroute_failed);
  EXPECT_GT(st.faults_injected, 0u);
  // The QoS books saw the churn (immediate plane, opt-in above).
  std::uint64_t served = 0;
  for (const auto& c : st.classes) served += c.served;
  EXPECT_GT(served, 0u);
}

}  // namespace
}  // namespace ftcs
