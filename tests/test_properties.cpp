// Property-based suites: invariants swept over construction parameters,
// seeds, and network families with parameterized gtest.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "fault/fault_instance.hpp"
#include "ftcs/ft_network.hpp"
#include "ftcs/router.hpp"
#include "ftcs/verify.hpp"
#include "graph/algorithms.hpp"
#include "graph/transform.hpp"
#include "networks/benes.hpp"
#include "networks/butterfly.hpp"
#include "networks/cantor.hpp"
#include "networks/clos.hpp"
#include "networks/crossbar.hpp"
#include "networks/multibutterfly.hpp"
#include "networks/superconcentrator.hpp"
#include "util/prng.hpp"

namespace ftcs {
namespace {

// ---------------------------------------------------------------------
// P1: structural invariants common to every construction in the library.

struct NamedBuilder {
  std::string name;
  graph::Network (*build)();
};

const NamedBuilder kBuilders[] = {
    {"crossbar8", [] { return networks::build_crossbar(8); }},
    {"benes8", [] { return networks::Benes(3).network(); }},
    {"butterfly8", [] { return networks::build_butterfly(3); }},
    {"multibutterfly8", [] { return networks::build_multibutterfly({3, 2, 1}); }},
    {"clos12", [] { return networks::build_clos({3, 5, 4}); }},
    {"cantor8", [] { return networks::build_cantor({3, 0}); }},
    {"superconcentrator16",
     [] {
       networks::SuperconcentratorParams p;
       p.n = 16;
       return networks::build_superconcentrator(p);
     }},
    {"nhat_sim",
     [] {
       return core::build_ft_network(core::FtParams::sim(2, 4, 6, 1, 3)).net;
     }},
};

class AllNetworks : public ::testing::TestWithParam<NamedBuilder> {};

TEST_P(AllNetworks, StructuralInvariants) {
  const auto net = GetParam().build();
  EXPECT_EQ(net.validate(), "") << GetParam().name;
  EXPECT_TRUE(graph::is_dag(net.g)) << GetParam().name;
  EXPECT_FALSE(net.inputs.empty());
  EXPECT_FALSE(net.outputs.empty());
  // Terminals are sources/sinks in every construction here.
  for (graph::VertexId v : net.inputs) EXPECT_EQ(net.g.in_degree(v), 0u);
  for (graph::VertexId v : net.outputs) EXPECT_EQ(net.g.out_degree(v), 0u);
}

TEST_P(AllNetworks, EveryTerminalTouchesAnEdge) {
  const auto net = GetParam().build();
  for (graph::VertexId v : net.inputs) EXPECT_GT(net.g.out_degree(v), 0u);
  for (graph::VertexId v : net.outputs) EXPECT_GT(net.g.in_degree(v), 0u);
}

TEST_P(AllNetworks, RouterLifecycleInvariant) {
  // connect/disconnect churn must restore a pristine busy mask.
  const auto net = GetParam().build();
  core::GreedyRouter router(net);
  util::Xoshiro256 rng(5);
  std::vector<core::GreedyRouter::CallId> calls;
  for (int op = 0; op < 200; ++op) {
    if (calls.empty() || rng.bernoulli(0.6)) {
      const auto in = static_cast<std::uint32_t>(rng.below(net.inputs.size()));
      const auto out = static_cast<std::uint32_t>(rng.below(net.outputs.size()));
      if (!router.input_idle(in) || !router.output_idle(out)) continue;
      const auto c = router.connect(in, out);
      if (c != core::GreedyRouter::kNoCall) calls.push_back(c);
    } else {
      const auto pick = rng.below(calls.size());
      router.disconnect(calls[pick]);
      calls[pick] = calls.back();
      calls.pop_back();
    }
  }
  for (auto c : calls) router.disconnect(c);
  EXPECT_EQ(router.active_calls(), 0u);
  EXPECT_EQ(router.busy_vertices(), 0u);
  for (auto b : router.busy_mask()) EXPECT_EQ(b, 0);
}

TEST_P(AllNetworks, MirrorPreservesCounts) {
  const auto net = GetParam().build();
  const auto m = graph::mirror(net);
  EXPECT_EQ(m.g.edge_count(), net.g.edge_count());
  EXPECT_EQ(m.inputs.size(), net.outputs.size());
  EXPECT_EQ(graph::network_depth(m), graph::network_depth(net));
}

TEST_P(AllNetworks, FaultInstanceCountsConsistent) {
  const auto net = GetParam().build();
  fault::FaultInstance inst(net, fault::FaultModel{0.03, 0.02}, 11);
  EXPECT_EQ(inst.open_count() + inst.closed_count(), inst.failures().size());
  // Every failure's endpoints are marked faulty.
  for (const auto& f : inst.failures()) {
    EXPECT_TRUE(inst.is_faulty(net.g.edge(f.edge).from));
    EXPECT_TRUE(inst.is_faulty(net.g.edge(f.edge).to));
  }
  // Non-terminal mask is dominated by the raw mask.
  const auto masked = inst.faulty_non_terminal_mask();
  for (graph::VertexId v = 0; v < net.g.vertex_count(); ++v)
    EXPECT_LE(masked[v], inst.faulty_vertices()[v]);
}

INSTANTIATE_TEST_SUITE_P(Networks, AllNetworks, ::testing::ValuesIn(kBuilders),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------
// P2: FT-network invariants over a parameter grid.

struct FtConfig {
  std::uint32_t nu, width, degree, gamma;
};

class FtGrid : public ::testing::TestWithParam<FtConfig> {};

TEST_P(FtGrid, PredictionsAndStructureHold) {
  const auto [nu, width, degree, gamma] = GetParam();
  const auto params = core::FtParams::sim(nu, width, degree, gamma, 7);
  const auto ft = core::build_ft_network(params);
  EXPECT_EQ(ft.net.g.edge_count(), params.predicted_edges());
  EXPECT_EQ(ft.net.g.vertex_count(), params.predicted_vertices());
  EXPECT_EQ(graph::network_depth(ft.net), 4u * nu);
  EXPECT_EQ(ft.net.validate(), "");
  EXPECT_EQ(ft.center_stage.size(), params.stage_width());
  // Every input reaches the full center stage when fault-free.
  const graph::VertexId src[1] = {ft.net.inputs[0]};
  const auto dist = graph::bfs_directed(ft.net.g, src);
  for (graph::VertexId v : ft.center_stage)
    ASSERT_NE(dist[v], graph::kUnreachable);
}

TEST_P(FtGrid, CleanChurnNeverBlocks) {
  const auto [nu, width, degree, gamma] = GetParam();
  const auto ft =
      core::build_ft_network(core::FtParams::sim(nu, width, degree, gamma, 9));
  const auto churn = core::nonblocking_churn(ft.net, 400, 3);
  EXPECT_EQ(churn.failures, 0u) << "nu=" << nu << " width=" << width;
}

INSTANTIATE_TEST_SUITE_P(Profiles, FtGrid,
                         ::testing::Values(FtConfig{1, 4, 6, 0},
                                           FtConfig{1, 8, 6, 1},
                                           FtConfig{2, 4, 6, 1},
                                           FtConfig{2, 4, 8, 0},
                                           FtConfig{3, 4, 6, 0},
                                           FtConfig{2, 8, 10, 1}),
                         [](const auto& info) {
                           const auto& c = info.param;
                           return "nu" + std::to_string(c.nu) + "w" +
                                  std::to_string(c.width) + "d" +
                                  std::to_string(c.degree) + "g" +
                                  std::to_string(c.gamma);
                         });

// ---------------------------------------------------------------------
// P3: Beneš looping algorithm, exhaustively for n = 8 over all 40320
// permutations (the full rearrangeability certificate at this size).

TEST(BenesExhaustive, AllPermutationsOfEight) {
  const networks::Benes b(3);
  std::vector<std::uint32_t> perm(8);
  std::iota(perm.begin(), perm.end(), 0u);
  std::size_t count = 0;
  std::vector<int> used(b.network().g.vertex_count());
  do {
    const auto paths = b.route(perm);
    std::fill(used.begin(), used.end(), 0);
    for (std::uint32_t i = 0; i < 8; ++i) {
      ASSERT_EQ(paths[i].front(), b.network().inputs[i]);
      ASSERT_EQ(paths[i].back(), b.network().outputs[perm[i]]);
      for (auto v : paths[i]) {
        ASSERT_EQ(used[v], 0) << "collision in permutation #" << count;
        used[v] = 1;
      }
    }
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(count, 40320u);
}

// ---------------------------------------------------------------------
// P4: fault sampling statistics across models (chi-square-ish bounds).

class FaultModels : public ::testing::TestWithParam<fault::FaultModel> {};

TEST_P(FaultModels, EmpiricalRatesWithinFourSigma) {
  const auto model = GetParam();
  const std::size_t edges = 50000;
  std::size_t opens = 0, closes = 0;
  const int reps = 10;
  for (int r = 0; r < reps; ++r) {
    for (const auto& f : fault::sample_failures(model, edges, 100 + r)) {
      if (f.state == fault::SwitchState::kOpenFail) ++opens;
      else ++closes;
    }
  }
  const double n = static_cast<double>(edges) * reps;
  const double sd_open = std::sqrt(n * model.eps_open * (1 - model.eps_open));
  const double sd_closed =
      std::sqrt(n * model.eps_closed * (1 - model.eps_closed));
  EXPECT_NEAR(static_cast<double>(opens), n * model.eps_open, 4 * sd_open + 1);
  EXPECT_NEAR(static_cast<double>(closes), n * model.eps_closed,
              4 * sd_closed + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Models, FaultModels,
    ::testing::Values(fault::FaultModel{0.001, 0.001}, fault::FaultModel{0.01, 0.0},
                      fault::FaultModel{0.0, 0.01}, fault::FaultModel{0.05, 0.01},
                      fault::FaultModel{0.2, 0.1}),
    [](const auto& info) {
      // Built by append rather than operator+ chaining: GCC 12's inliner
      // flags the rvalue operator+ chain with a spurious -Wrestrict.
      std::string name = "o";
      name += std::to_string(static_cast<int>(info.param.eps_open * 1000));
      name += "c";
      name += std::to_string(static_cast<int>(info.param.eps_closed * 1000));
      return name;
    });

// ---------------------------------------------------------------------
// P5: strictly nonblocking families never fail churn; blocking families do.

struct ChurnCase {
  std::string name;
  graph::Network (*build)();
  bool strictly_nonblocking;
};

const ChurnCase kChurnCases[] = {
    {"crossbar", [] { return networks::build_crossbar(8); }, true},
    {"clos_m2k1", [] { return networks::build_clos({2, 3, 4}); }, true},
    {"cantor", [] { return networks::build_cantor({3, 0}); }, true},
    {"nhat", [] { return core::build_ft_network(core::FtParams::sim(2, 4, 6, 1, 5)).net; },
     true},
    {"benes", [] { return networks::Benes(3).network(); }, false},
    {"butterfly", [] { return networks::build_butterfly(3); }, false},
    {"clos_small_m", [] { return networks::build_clos({3, 2, 3}); }, false},
};

class ChurnFamilies : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(ChurnFamilies, GreedyChurnMatchesTheory) {
  const auto& c = GetParam();
  const auto net = c.build();
  // Aggregate over several seeds so blocking families reliably exhibit a
  // failure and nonblocking ones never do.
  std::size_t failures = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    failures += core::nonblocking_churn(net, 1500, seed).failures;
  if (c.strictly_nonblocking) {
    EXPECT_EQ(failures, 0u) << c.name;
  } else {
    EXPECT_GT(failures, 0u) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ChurnFamilies,
                         ::testing::ValuesIn(kChurnCases),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace ftcs
