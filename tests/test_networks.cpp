#include <gtest/gtest.h>

#include <numeric>

#include "graph/algorithms.hpp"
#include "networks/benes.hpp"
#include "networks/butterfly.hpp"
#include "networks/clos.hpp"
#include "networks/crossbar.hpp"
#include "networks/multibutterfly.hpp"
#include "networks/superconcentrator.hpp"
#include "util/prng.hpp"

namespace ftcs::networks {
namespace {

TEST(Crossbar, Structure) {
  const auto net = build_crossbar(4);
  EXPECT_EQ(net.inputs.size(), 4u);
  EXPECT_EQ(net.outputs.size(), 4u);
  EXPECT_EQ(net.g.edge_count(), 16u);
  EXPECT_EQ(graph::network_depth(net), 1u);
  EXPECT_EQ(net.validate(), "");
}

TEST(Benes, StructureAndSize) {
  for (std::uint32_t k : {1u, 2u, 3u, 4u}) {
    const Benes b(k);
    const std::uint32_t n = 1u << k;
    EXPECT_EQ(b.network().inputs.size(), n);
    EXPECT_EQ(b.network().g.vertex_count(), (2 * k + 1) * n);
    EXPECT_EQ(b.network().g.edge_count(), std::size_t{4} * n * k);
    EXPECT_EQ(graph::network_depth(b.network()), 2 * k);
    EXPECT_EQ(b.network().validate(), "");
  }
  EXPECT_THROW(Benes(0), std::invalid_argument);
}

TEST(Benes, RoutesIdentity) {
  const Benes b(3);
  std::vector<std::uint32_t> perm(8);
  std::iota(perm.begin(), perm.end(), 0u);
  const auto paths = b.route(perm);
  // validate_routing lives in ftcs::core; check manually here.
  std::vector<int> used(b.network().g.vertex_count(), 0);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(paths[i].front(), b.network().inputs[i]);
    EXPECT_EQ(paths[i].back(), b.network().outputs[i]);
    for (auto v : paths[i]) {
      EXPECT_FALSE(used[v]);
      used[v] = 1;
    }
  }
}

TEST(Benes, RoutesAllPermutationsOfFour) {
  const Benes b(2);
  std::vector<std::uint32_t> perm{0, 1, 2, 3};
  int count = 0;
  do {
    const auto paths = b.route(perm);
    std::vector<int> used(b.network().g.vertex_count(), 0);
    for (std::uint32_t i = 0; i < 4; ++i) {
      ASSERT_EQ(paths[i].front(), b.network().inputs[i]);
      ASSERT_EQ(paths[i].back(), b.network().outputs[perm[i]]);
      ASSERT_EQ(paths[i].size(), 5u);  // 2k+1 stages
      for (std::size_t j = 0; j + 1 < paths[i].size(); ++j) {
        bool edge = false;
        for (graph::EdgeId e : b.network().g.out_edges(paths[i][j]))
          edge |= b.network().g.edge(e).to == paths[i][j + 1];
        ASSERT_TRUE(edge) << "missing edge in perm " << count;
      }
      for (auto v : paths[i]) {
        ASSERT_FALSE(used[v]);
        used[v] = 1;
      }
    }
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(count, 24);
}

TEST(Benes, RoutesRandomPermutationsLarger) {
  const Benes b(5);  // n = 32
  util::Xoshiro256 rng(5);
  std::vector<std::uint32_t> perm(32);
  std::iota(perm.begin(), perm.end(), 0u);
  for (int rep = 0; rep < 50; ++rep) {
    util::shuffle(perm, rng);
    const auto paths = b.route(perm);
    std::vector<int> used(b.network().g.vertex_count(), 0);
    for (std::uint32_t i = 0; i < 32; ++i) {
      ASSERT_EQ(paths[i].back(), b.network().outputs[perm[i]]);
      for (auto v : paths[i]) {
        ASSERT_FALSE(used[v]);
        used[v] = 1;
      }
    }
  }
}

TEST(Benes, RejectsNonPermutations) {
  const Benes b(2);
  EXPECT_THROW(b.route({0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(b.route({0, 0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(b.route({0, 1, 2, 9}), std::invalid_argument);
}

TEST(Clos, SizeFormulaAndStructure) {
  const ClosParams p{3, 5, 4};
  const auto net = build_clos(p);
  EXPECT_EQ(net.inputs.size(), 12u);
  EXPECT_EQ(net.g.edge_count(), p.size());
  EXPECT_EQ(graph::network_depth(net), 3u);
  EXPECT_EQ(net.validate(), "");
  EXPECT_TRUE(p.strictly_nonblocking());  // 5 = 2*3 - 1
  EXPECT_TRUE(p.rearrangeable());
}

TEST(Clos, NonblockingThresholds) {
  EXPECT_FALSE((ClosParams{3, 4, 2}.strictly_nonblocking()));
  EXPECT_TRUE((ClosParams{3, 4, 2}.rearrangeable()));
  EXPECT_FALSE((ClosParams{3, 2, 2}.rearrangeable()));
}

TEST(Clos, SizingHelper) {
  const auto p = clos_nonblocking_for(32);
  EXPECT_GE(p.terminal_count(), 32u);
  EXPECT_TRUE(p.strictly_nonblocking());
}

TEST(Butterfly, StructureAndUniquePaths) {
  const auto net = build_butterfly(3);
  EXPECT_EQ(net.inputs.size(), 8u);
  EXPECT_EQ(net.g.edge_count(), 3u * 2 * 8);
  EXPECT_EQ(graph::network_depth(net), 3u);
  EXPECT_EQ(net.validate(), "");
  // The butterfly has exactly one path per input/output pair: count paths by
  // DP over stages = product of choices consistent with bit-fixing = 1.
  for (std::uint32_t in = 0; in < 8; ++in)
    for (std::uint32_t out = 0; out < 8; ++out) {
      const auto path = butterfly_path(3, in, out);
      ASSERT_EQ(path.size(), 4u);
      EXPECT_EQ(path.front(), net.inputs[in]);
      EXPECT_EQ(path.back(), net.outputs[out]);
      for (std::size_t j = 0; j + 1 < path.size(); ++j) {
        bool edge = false;
        for (graph::EdgeId e : net.g.out_edges(path[j]))
          edge |= net.g.edge(e).to == path[j + 1];
        ASSERT_TRUE(edge);
      }
    }
}

TEST(Multibutterfly, StructureAndDegrees) {
  const MultibutterflyParams p{3, 2, 42};
  const auto net = build_multibutterfly(p);
  EXPECT_EQ(net.inputs.size(), 8u);
  EXPECT_EQ(net.g.edge_count(), std::size_t{3} * 2 * 2 * 8);
  EXPECT_EQ(net.validate(), "");
  // Every non-output vertex has out-degree 2d = 4.
  for (std::uint32_t s = 0; s < 3; ++s)
    for (std::uint32_t i = 0; i < 8; ++i)
      EXPECT_EQ(net.g.out_degree(s * 8 + i), 4u);
}

TEST(Multibutterfly, AllOutputsReachableFromEveryInput) {
  const auto net = build_multibutterfly({4, 2, 7});
  for (graph::VertexId in : net.inputs) {
    const graph::VertexId src[1] = {in};
    const auto dist = graph::bfs_directed(net.g, src);
    for (graph::VertexId out : net.outputs)
      EXPECT_NE(dist[out], graph::kUnreachable);
  }
}

TEST(Superconcentrator, LinearSize) {
  // Size grows linearly: size(2n)/size(n) -> ~2, and size/n bounded.
  SuperconcentratorParams p;
  p.degree = 6;
  p.base_size = 8;
  std::size_t prev = 0;
  for (std::uint32_t n : {64u, 128u, 256u, 512u}) {
    p.n = n;
    const auto net = build_superconcentrator(p);
    const double per_terminal = static_cast<double>(net.g.edge_count()) / n;
    EXPECT_LT(per_terminal, 4.0 * (2 * p.degree + 1));
    if (prev) {
      EXPECT_LT(net.g.edge_count(), prev * 3);
    }
    prev = net.g.edge_count();
  }
}

TEST(Superconcentrator, BaseCaseIsCompleteBipartite) {
  SuperconcentratorParams p;
  p.n = 4;
  p.base_size = 8;
  const auto net = build_superconcentrator(p);
  EXPECT_EQ(net.g.edge_count(), 16u);
}

TEST(Superconcentrator, IsDag) {
  SuperconcentratorParams p;
  p.n = 64;
  const auto net = build_superconcentrator(p);
  EXPECT_TRUE(graph::is_dag(net.g));
}

}  // namespace
}  // namespace ftcs::networks
