// svc::Federation — shard map, intra fast path, two-phase inter-shard setup
// with reverse-order abort, trunk-group selection (least-loaded + AIMD
// penalty), the composed fault planes (trunk edge faults, member faults with
// half-call reconciliation), the batched plane, and exact book balance after
// abort/fault storms on both engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "networks/cantor.hpp"
#include "networks/crossbar.hpp"
#include "svc/federation.hpp"
#include "util/prng.hpp"

namespace ftcs::svc {
namespace {

FederationConfig fed_cfg(Backend backend, std::uint32_t subscribers = 0) {
  FederationConfig cfg;
  cfg.backend = backend;
  cfg.sessions = backend == Backend::kConcurrent ? 2 : 1;
  cfg.subscribers = subscribers;
  return cfg;
}

/// Sums claimed lines across every trunk group.
std::size_t total_occupancy(const Federation& fed) {
  std::size_t n = 0;
  for (std::uint32_t g = 0; g < fed.trunk_group_count(); ++g)
    n += fed.trunk_group(g).occupancy();
  return n;
}

TEST(FederationShardMap, PortDealingBalancesMeshQuotas) {
  const auto net = networks::build_cantor({4, 0});  // 16 ports per member
  const unsigned kShards = 4;
  Federation fed(net, kShards, fed_cfg(Backend::kGreedy));
  // Default split: 3/4 subscribers, remainder trunk ports.
  EXPECT_EQ(fed.subscribers_per_member(), 12u);
  EXPECT_EQ(fed.input_count(), 48u);
  // Shard map round-trips.
  for (std::uint32_t g = 0; g < fed.input_count(); ++g) {
    EXPECT_EQ(fed.global_of(fed.shard_of(g), fed.local_of(g)), g);
    EXPECT_LT(fed.shard_of(g), kShards);
    EXPECT_LT(fed.local_of(g), fed.subscribers_per_member());
  }
  // Every member sends AND receives exactly `pool` = 4 lines; every trunk
  // port is used exactly once per member per direction.
  std::vector<std::size_t> egress_lines(kShards, 0), ingress_lines(kShards, 0);
  std::vector<std::set<std::uint32_t>> egress_ports(kShards),
      ingress_ports(kShards);
  for (std::uint32_t g = 0; g < fed.trunk_group_count(); ++g) {
    const TrunkGroup& tg = fed.trunk_group(g);
    EXPECT_NE(tg.from(), tg.to());
    EXPECT_GT(tg.capacity(), 0u);
    EXPECT_EQ(tg.usable(), tg.capacity());
    for (std::uint32_t l = 0; l < tg.capacity(); ++l) {
      const TrunkLine& ln = tg.line(l);
      EXPECT_GE(ln.egress_port, fed.subscribers_per_member());
      EXPECT_LT(ln.egress_port, 16u);
      EXPECT_GE(ln.ingress_port, fed.subscribers_per_member());
      EXPECT_LT(ln.ingress_port, 16u);
      EXPECT_TRUE(egress_ports[tg.from()].insert(ln.egress_port).second)
          << "egress port reused within member " << tg.from();
      EXPECT_TRUE(ingress_ports[tg.to()].insert(ln.ingress_port).second)
          << "ingress port reused within member " << tg.to();
      ++egress_lines[tg.from()];
      ++ingress_lines[tg.to()];
    }
  }
  for (unsigned m = 0; m < kShards; ++m) {
    EXPECT_EQ(egress_lines[m], 4u) << "member " << m;
    EXPECT_EQ(ingress_lines[m], 4u) << "member " << m;
  }
  // Mesh: every ordered pair has at least one direct group.
  for (unsigned a = 0; a < kShards; ++a) {
    for (unsigned b = 0; b < kShards; ++b) {
      if (a != b) {
        EXPECT_FALSE(fed.groups_between(a, b).empty());
      }
    }
  }
}

TEST(FederationShardMap, RingTopologyTrunksOnlyNeighbours) {
  const auto net = networks::build_cantor({4, 0});
  FederationConfig cfg = fed_cfg(Backend::kGreedy);
  cfg.topology = FederationConfig::Topology::kRing;
  Federation fed(net, 6, cfg);
  for (unsigned a = 0; a < 6; ++a) {
    for (unsigned b = 0; b < 6; ++b) {
      if (a == b) continue;
      const bool neighbour = b == (a + 1) % 6 || b == (a + 5) % 6;
      EXPECT_EQ(!fed.groups_between(a, b).empty(), neighbour)
          << a << " -> " << b;
    }
  }
  // Non-adjacent inter-shard call: no direct trunks -> typed kTrunkBusy at
  // the trunk stage (hierarchical multi-hop routing is future work).
  const FedOutcome o = fed.call(
      {fed.global_of(0, 0), fed.global_of(3, 0), 0, 5});
  EXPECT_EQ(o.reject, RejectReason::kTrunkBusy);
  EXPECT_EQ(o.stage, FedStage::kTrunk);
}

TEST(FederationCalls, IntraFastPathNeverTouchesFederationState) {
  const auto net = networks::build_cantor({4, 0});
  Federation fed(net, 2, fed_cfg(Backend::kGreedy));
  const FedOutcome o = fed.call({0, 1, 0, 42});
  ASSERT_TRUE(o.connected());
  EXPECT_TRUE(o.id.valid());
  EXPECT_FALSE(o.id.inter());
  EXPECT_EQ(o.shard_in, 0u);
  EXPECT_EQ(o.shard_out, 0u);
  EXPECT_EQ(o.trunk_group, FedOutcome::kNoTrunkGroup);
  EXPECT_EQ(o.tag, 42u);
  EXPECT_EQ(fed.active_inter_calls(), 0u);
  EXPECT_EQ(total_occupancy(fed), 0u);
  EXPECT_EQ(fed.member(1).stats().router.connect_calls, 0u);
  EXPECT_EQ(fed.hangup(o.id), RejectReason::kNone);
  EXPECT_EQ(fed.busy_vertices(), 0u);
  const FederationStats st = fed.stats();
  EXPECT_EQ(st.intra_calls, 1u);
  EXPECT_EQ(st.inter_calls, 0u);
  EXPECT_EQ(st.trunks.claims, 0u);
  EXPECT_EQ(st.members.hangups, 1u);
}

TEST(FederationCalls, InterCallLifecycleClaimsAndReleasesInOrder) {
  const auto net = networks::build_cantor({4, 0});
  Federation fed(net, 2, fed_cfg(Backend::kGreedy));
  const std::uint32_t in = fed.global_of(0, 3), out = fed.global_of(1, 5);
  const FedOutcome o = fed.call({in, out, 0, 7});
  ASSERT_TRUE(o.connected());
  EXPECT_TRUE(o.id.inter());
  EXPECT_EQ(o.shard_in, 0u);
  EXPECT_EQ(o.shard_out, 1u);
  ASSERT_NE(o.trunk_group, FedOutcome::kNoTrunkGroup);
  EXPECT_EQ(fed.trunk_group(o.trunk_group).occupancy(), 1u);
  EXPECT_GT(o.path_length, 0u);
  EXPECT_EQ(fed.active_inter_calls(), 1u);
  EXPECT_EQ(fed.member(0).active_calls(), 1u);
  EXPECT_EQ(fed.member(1).active_calls(), 1u);
  EXPECT_FALSE(fed.input_idle(in));
  EXPECT_FALSE(fed.output_idle(out));

  EXPECT_EQ(fed.hangup(o.id), RejectReason::kNone);
  EXPECT_EQ(fed.active_inter_calls(), 0u);
  EXPECT_EQ(total_occupancy(fed), 0u);
  EXPECT_EQ(fed.busy_vertices(), 0u);
  EXPECT_TRUE(fed.input_idle(in));
  EXPECT_TRUE(fed.output_idle(out));
  const FederationStats st = fed.stats();
  EXPECT_EQ(st.inter_calls, 1u);
  EXPECT_EQ(st.inter_connected, 1u);
  EXPECT_EQ(st.half_calls_routed, 2u);
  EXPECT_EQ(st.inter_hangups, 1u);
  EXPECT_EQ(st.trunks.claims, 1u);
  EXPECT_EQ(st.trunks.releases, 1u);
  // Double hangup of the retired slot is a typed stale-handle error.
  EXPECT_EQ(fed.hangup(o.id), RejectReason::kStaleHandle);
  EXPECT_EQ(fed.stats().handle_errors, 1u);
}

TEST(FederationCalls, HandleSafetyNullForeignAndBadTerminal) {
  const auto net = networks::build_cantor({4, 0});
  Federation fed_a(net, 2, fed_cfg(Backend::kGreedy));
  Federation fed_b(net, 2, fed_cfg(Backend::kGreedy));
  EXPECT_EQ(fed_a.hangup(FedCallId{}), RejectReason::kStaleHandle);
  const FedOutcome o = fed_b.call(
      {fed_b.global_of(0, 0), fed_b.global_of(1, 0), 0, 0});
  ASSERT_TRUE(o.connected());
  EXPECT_EQ(fed_a.hangup(o.id), RejectReason::kForeignHandle);
  EXPECT_EQ(fed_a.stats().handle_errors, 2u);
  EXPECT_EQ(fed_b.hangup(o.id), RejectReason::kNone);
  // Out-of-range global terminal: no home member in the shard map.
  const FedOutcome bad = fed_a.call(
      {static_cast<std::uint32_t>(fed_a.input_count()), 0, 0, 0});
  EXPECT_EQ(bad.reject, RejectReason::kBadSession);
}

/// Drives typed per-stage aborts: each failure point must release every
/// prior claim (trunk line, ingress half), on both engines.
void run_two_phase_abort_paths(Backend backend) {
  const auto net = networks::build_cantor({4, 0});
  Federation fed(net, 2, fed_cfg(backend));
  const std::uint32_t subs = fed.subscribers_per_member();

  // INGRESS abort: caller's input is already busy -> member typed reject,
  // stage kIngress, the just-claimed trunk line released.
  const FedOutcome hold_in = fed.call({0, 1, 0, 0});
  ASSERT_TRUE(hold_in.connected());
  const FedOutcome a = fed.call({0, fed.global_of(1, 0), 0, 1});
  EXPECT_EQ(a.reject, RejectReason::kTerminalBusy);
  EXPECT_EQ(a.stage, FedStage::kIngress);
  EXPECT_EQ(total_occupancy(fed), 0u);
  EXPECT_EQ(fed.stats().ingress_aborts, 1u);
  EXPECT_EQ(fed.hangup(hold_in.id), RejectReason::kNone);

  // EGRESS abort: callee's output busy -> ingress half torn down again,
  // trunk released, stage kEgress.
  const FedOutcome hold_out = fed.call(
      {fed.global_of(1, 2), fed.global_of(1, 3), 0, 0});
  ASSERT_TRUE(hold_out.connected());
  const std::size_t m0_before = fed.member(0).active_calls();
  const FedOutcome b = fed.call({fed.global_of(0, 4), fed.global_of(1, 3), 0, 2});
  EXPECT_EQ(b.reject, RejectReason::kTerminalBusy);
  EXPECT_EQ(b.stage, FedStage::kEgress);
  EXPECT_EQ(fed.member(0).active_calls(), m0_before);  // ingress rolled back
  EXPECT_EQ(total_occupancy(fed), 0u);
  EXPECT_EQ(fed.stats().egress_aborts, 1u);
  EXPECT_EQ(fed.hangup(hold_out.id), RejectReason::kNone);

  // TRUNK abort: exhaust every 0->1 line, next inter call bounces at the
  // trunk stage without touching either member.
  std::vector<FedCallId> held;
  std::uint32_t next_in = 0, next_out = 0;
  for (;;) {
    const FedOutcome o = fed.call(
        {fed.global_of(0, next_in++), fed.global_of(1, next_out++), 0, 9});
    ASSERT_LT(next_in, subs) << "ran out of subscribers before trunk lines";
    if (!o.connected()) {
      EXPECT_EQ(o.reject, RejectReason::kTrunkBusy);
      EXPECT_EQ(o.stage, FedStage::kTrunk);
      break;
    }
    held.push_back(o.id);
  }
  EXPECT_GE(fed.stats().trunk_rejects, 1u);
  for (const FedCallId id : held) EXPECT_EQ(fed.hangup(id), RejectReason::kNone);
  EXPECT_EQ(total_occupancy(fed), 0u);
  EXPECT_EQ(fed.busy_vertices(), 0u);
}

TEST(FederationTwoPhase, AbortPathsReleaseEverythingGreedy) {
  run_two_phase_abort_paths(Backend::kGreedy);
}
TEST(FederationTwoPhase, AbortPathsReleaseEverythingConcurrent) {
  run_two_phase_abort_paths(Backend::kConcurrent);
}

/// A storm of forced failures at every setup stage; afterwards every book
/// balances to exactly zero (busy popcount, trunk occupancy, slot books).
void run_abort_storm(Backend backend) {
  const auto net = networks::build_cantor({4, 0});
  Federation fed(net, 4, fed_cfg(backend));
  const std::uint32_t subs = fed.subscribers_per_member();
  util::Xoshiro256 rng(util::derive_seed(92, backend == Backend::kGreedy));
  std::vector<FedCallId> held;
  for (int round = 0; round < 2000; ++round) {
    const auto in = static_cast<std::uint32_t>(rng.below(fed.input_count()));
    const auto out = static_cast<std::uint32_t>(rng.below(fed.input_count()));
    const FedOutcome o = fed.call({in, out, 0, static_cast<std::uint64_t>(round)});
    if (o.connected()) {
      held.push_back(o.id);
    } else {
      // Typed, staged failure; nothing may leak.
      EXPECT_NE(o.reject, RejectReason::kNone);
      if (o.stage == FedStage::kTrunk) {
        EXPECT_EQ(o.reject, RejectReason::kTrunkBusy);
      }
    }
    // Churn: randomly drop a third of held calls.
    for (std::size_t k = 0; k < held.size();) {
      if (rng.below(3) == 0) {
        EXPECT_EQ(fed.hangup(held[k]), RejectReason::kNone);
        held[k] = held.back();
        held.pop_back();
      } else {
        ++k;
      }
    }
  }
  const FederationStats mid = fed.stats();
  EXPECT_GT(mid.inter_connected, 0u);
  EXPECT_GT(mid.ingress_aborts + mid.egress_aborts + mid.trunk_rejects, 0u);
  // Live books match the held set.
  EXPECT_EQ(fed.active_inter_calls(), total_occupancy(fed));
  for (const FedCallId id : held) EXPECT_EQ(fed.hangup(id), RejectReason::kNone);
  // Exact zero balance.
  EXPECT_EQ(fed.active_calls(), 0u);
  EXPECT_EQ(fed.busy_vertices(), 0u);
  EXPECT_EQ(fed.active_inter_calls(), 0u);
  EXPECT_EQ(total_occupancy(fed), 0u);
  const FederationStats st = fed.stats();
  EXPECT_EQ(st.trunks.claims, st.trunks.releases);
  // Every accepted member half/intra call got exactly one hangup — the
  // two-phase aborts included (the rolled-back ingress halves).
  EXPECT_EQ(st.members.router.accepted, st.members.hangups);
  for (std::uint32_t g = 0; g < subs; ++g) {
    EXPECT_TRUE(fed.input_idle(g));
    EXPECT_TRUE(fed.output_idle(g));
  }
}

TEST(FederationTwoPhase, AbortStormBooksBalanceGreedy) {
  run_abort_storm(Backend::kGreedy);
}
TEST(FederationTwoPhase, AbortStormBooksBalanceConcurrent) {
  run_abort_storm(Backend::kConcurrent);
}

TEST(TrunkGroupUnit, RotatingClaimAndAimdPenalty) {
  TrunkGroup g(0, 0, 1, {{12, 12}, {13, 13}, {14, 14}});
  EXPECT_EQ(g.capacity(), 3u);
  EXPECT_EQ(g.score(), 0u);
  // Rotating first-free scan: consecutive claims walk the lines.
  const auto a = g.claim(), b = g.claim(), c = g.claim();
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(*c, 2u);
  EXPECT_EQ(g.occupancy(), 3u);
  // Full group: claim fails, penalty inflates multiplicatively.
  EXPECT_FALSE(g.claim().has_value());
  const std::uint32_t p1 = g.penalty();
  EXPECT_GT(p1, 0u);
  EXPECT_FALSE(g.claim().has_value());
  EXPECT_GT(g.penalty(), p1);
  EXPECT_EQ(g.stats().rejects, 2u);
  // Release + successful claim decays the penalty additively.
  g.release(1);
  EXPECT_EQ(g.occupancy(), 2u);
  const std::uint32_t p2 = g.penalty();
  ASSERT_TRUE(g.claim().has_value());
  EXPECT_EQ(g.penalty(), p2 - 1);
  // Fault keeps the busy bit (kill-then-release discipline).
  EXPECT_TRUE(g.fault(0));       // line 0 carries a call
  EXPECT_FALSE(g.fault(0));      // idempotent
  EXPECT_EQ(g.usable(), 2u);
  EXPECT_TRUE(g.line_busy(0));
  g.release(0);
  EXPECT_FALSE(g.line_busy(0));
  // A faulted line is never claimed even when free.
  g.release(1);
  g.release(2);
  std::set<std::uint32_t> seen;
  while (auto l = g.claim()) seen.insert(*l);
  EXPECT_EQ(seen.count(0), 0u);
  EXPECT_EQ(seen.size(), 2u);
  g.repair(0);
  EXPECT_EQ(g.usable(), 3u);
  ASSERT_TRUE(g.claim().has_value());
}

TEST(TrunkSelection, LeastLoadedTiebreakSpreadsAcrossParallelGroups) {
  const auto net = networks::build_cantor({4, 0});
  FederationConfig cfg = fed_cfg(Backend::kGreedy);
  cfg.groups_per_peer = 2;  // split each peer quota into two parallel groups
  Federation fed(net, 2, cfg);
  const auto gids = fed.groups_between(0, 1);
  ASSERT_EQ(gids.size(), 2u);
  std::vector<FedCallId> held;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const FedOutcome o = fed.call(
        {fed.global_of(0, i), fed.global_of(1, i), 0, 0});
    ASSERT_TRUE(o.connected());
    held.push_back(o.id);
    // After each claim the two parallel groups differ by at most one line.
    const auto occ0 = fed.trunk_group(gids[0]).occupancy();
    const auto occ1 = fed.trunk_group(gids[1]).occupancy();
    EXPECT_LE(occ0 > occ1 ? occ0 - occ1 : occ1 - occ0, 1u);
  }
  for (const FedCallId id : held) EXPECT_EQ(fed.hangup(id), RejectReason::kNone);
}

TEST(FederationFaults, TrunkFaultTearsDownTypedAndReadmits) {
  const auto net = networks::build_cantor({4, 0});
  Federation fed(net, 2, fed_cfg(Backend::kGreedy));
  const FedOutcome o = fed.call(
      {fed.global_of(0, 1), fed.global_of(1, 1), 0, 31});
  ASSERT_TRUE(o.connected());
  // Find the claimed line within the group.
  const TrunkGroup& tg = fed.trunk_group(o.trunk_group);
  std::uint32_t line = tg.capacity();
  for (std::uint32_t l = 0; l < tg.capacity(); ++l)
    if (tg.line_busy(l)) line = l;
  ASSERT_LT(line, tg.capacity());

  const TrunkFaultImpact imp = fed.fail_trunk(o.trunk_group, line);
  EXPECT_TRUE(imp.applied);
  EXPECT_TRUE(imp.was_busy);
  ASSERT_EQ(imp.killed.size(), 1u);
  EXPECT_EQ(imp.killed[0].reject, RejectReason::kFaulted);
  EXPECT_EQ(imp.killed[0].tag, 31u);
  EXPECT_TRUE(imp.killed[0].id == o.id);  // the owner's retained handle
  // Capacity is ample: the end-to-end re-admission carried on another line.
  ASSERT_EQ(imp.reroutes.size(), 1u);
  EXPECT_TRUE(imp.reroutes[0].connected());
  EXPECT_EQ(imp.reroute_succeeded, 1u);
  EXPECT_EQ(fed.active_inter_calls(), 1u);
  // The faulted line is out of the pool but no longer busy.
  EXPECT_TRUE(tg.line_faulted(line));
  EXPECT_FALSE(tg.line_busy(line));
  EXPECT_EQ(tg.usable(), tg.capacity() - 1);
  // The retained handle acks kFaulted once — informative, not misuse.
  EXPECT_EQ(fed.hangup(o.id), RejectReason::kFaulted);
  EXPECT_EQ(fed.stats().handle_errors, 0u);
  // The reroute's handle is the live one.
  EXPECT_EQ(fed.hangup(imp.reroutes[0].id), RejectReason::kNone);
  EXPECT_EQ(fed.busy_vertices(), 0u);
  EXPECT_EQ(total_occupancy(fed), 0u);
  const FederationStats st = fed.stats();
  EXPECT_EQ(st.calls_killed_by_trunk_fault, 1u);
  EXPECT_EQ(st.trunks.faults, 1u);
  EXPECT_EQ(st.reroute_succeeded, 1u);
  // Repair restores the pool; the op is idempotent both ways.
  EXPECT_TRUE(fed.repair_trunk(o.trunk_group, line).applied);
  EXPECT_FALSE(fed.repair_trunk(o.trunk_group, line).applied);
  EXPECT_EQ(fed.trunk_group(o.trunk_group).usable(),
            fed.trunk_group(o.trunk_group).capacity());
  EXPECT_FALSE(fed.fail_trunk(o.trunk_group, line).was_busy);
  EXPECT_FALSE(fed.fail_trunk(o.trunk_group, line).applied);
}

/// Trunk-fault storm: every killed inter call gets a typed teardown of both
/// halves and a re-admission; books balance exactly afterwards.
void run_trunk_fault_storm(Backend backend) {
  const auto net = networks::build_cantor({5, 0});  // 32 ports per member
  Federation fed(net, 4, fed_cfg(backend));
  util::Xoshiro256 rng(util::derive_seed(1992, backend == Backend::kGreedy));
  // Bring up a population of inter calls, tracked by tag.
  std::map<std::uint64_t, FedCallId> live;
  std::uint64_t tag = 0;
  for (int i = 0; i < 200; ++i) {
    const auto sa = static_cast<std::uint32_t>(rng.below(4));
    auto sb = static_cast<std::uint32_t>(rng.below(4));
    if (sb == sa) sb = (sb + 1) % 4;
    const FedOutcome o =
        fed.call({fed.global_of(sa, static_cast<std::uint32_t>(rng.below(
                      fed.subscribers_per_member()))),
                  fed.global_of(sb, static_cast<std::uint32_t>(rng.below(
                      fed.subscribers_per_member()))),
                  0, tag});
    if (o.connected()) live.emplace(tag, o.id);
    ++tag;
  }
  ASSERT_GT(live.size(), 10u);
  const std::size_t before = live.size();

  // Storm: fail a line of every group (random), reconciling the tracked
  // handles from the impact reports.
  std::uint64_t killed_total = 0;
  for (std::uint32_t g = 0; g < fed.trunk_group_count(); ++g) {
    const auto line = static_cast<std::uint32_t>(
        rng.below(fed.trunk_group(g).capacity()));
    const TrunkFaultImpact imp = fed.fail_trunk(g, line);
    ASSERT_EQ(imp.killed.size(), imp.reroutes.size());
    killed_total += imp.killed.size();
    for (std::size_t i = 0; i < imp.killed.size(); ++i) {
      const FedOutcome& dead = imp.killed[i];
      EXPECT_EQ(dead.reject, RejectReason::kFaulted);
      const auto it = live.find(dead.tag);
      ASSERT_NE(it, live.end());
      EXPECT_TRUE(it->second == dead.id);
      // The retained handle now acks kFaulted (typed, informative).
      EXPECT_EQ(fed.hangup(it->second), RejectReason::kFaulted);
      live.erase(it);
      if (imp.reroutes[i].connected())
        live.emplace(imp.reroutes[i].tag, imp.reroutes[i].id);
    }
    EXPECT_EQ(imp.reroute_succeeded + imp.reroute_failed, imp.killed.size());
  }
  EXPECT_GT(killed_total, 0u);
  const FederationStats mid = fed.stats();
  EXPECT_EQ(mid.calls_killed_by_trunk_fault, killed_total);
  EXPECT_EQ(mid.reroute_succeeded + mid.reroute_failed, killed_total);
  EXPECT_EQ(fed.active_inter_calls(), live.size());
  EXPECT_EQ(total_occupancy(fed), live.size());
  (void)before;

  // Drain the survivors; everything balances to zero.
  for (const auto& [t, id] : live)
    EXPECT_EQ(fed.hangup(id), RejectReason::kNone) << "tag " << t;
  EXPECT_EQ(fed.active_calls(), 0u);
  EXPECT_EQ(fed.busy_vertices(), 0u);
  EXPECT_EQ(total_occupancy(fed), 0u);
  const FederationStats st = fed.stats();
  EXPECT_EQ(st.trunks.claims, st.trunks.releases);
  EXPECT_EQ(st.trunks.faults, fed.trunk_group_count());
  EXPECT_EQ(st.handle_errors, 0u);
}

TEST(FederationFaults, TrunkFaultStormBooksBalanceGreedy) {
  run_trunk_fault_storm(Backend::kGreedy);
}
TEST(FederationFaults, TrunkFaultStormBooksBalanceConcurrent) {
  run_trunk_fault_storm(Backend::kConcurrent);
}

TEST(FederationFaults, MemberFaultAdoptsReroutedHalf) {
  const auto net = networks::build_cantor({4, 0});
  Federation fed(net, 2, fed_cfg(Backend::kGreedy));
  const FedOutcome o = fed.call(
      {fed.global_of(0, 2), fed.global_of(1, 2), 0, 77});
  ASSERT_TRUE(o.connected());
  // Walk member 0's edges until one hits the ingress half's path. Cantor
  // path diversity lets the member reroute the half in place, so the
  // federation adopts the new half and the inter call SURVIVES.
  bool hit = false;
  for (graph::EdgeId e = 0; e < net.g.edge_count() && !hit; ++e) {
    fault::FaultEvent ev;
    ev.edge = e;
    ev.kind = fault::FaultEvent::Kind::kFail;
    const FedFaultImpact imp = fed.inject(0, ev);
    if (imp.halves_hit > 0) {
      hit = true;
      EXPECT_EQ(imp.halves_hit, 1u);
      EXPECT_EQ(imp.mates_adopted, 1u);
      EXPECT_EQ(imp.mates_torn_down, 0u);
      EXPECT_TRUE(imp.killed.empty());  // the federation-level call survived
    } else {
      ev.kind = fault::FaultEvent::Kind::kRepair;
      fed.repair(0, ev);
    }
  }
  ASSERT_TRUE(hit);
  EXPECT_EQ(fed.active_inter_calls(), 1u);
  EXPECT_EQ(fed.stats().mates_adopted, 1u);
  // The retained federation handle still works: the slot was re-bound.
  EXPECT_EQ(fed.hangup(o.id), RejectReason::kNone);
  EXPECT_EQ(fed.busy_vertices(), 0u);
  EXPECT_EQ(total_occupancy(fed), 0u);
}

TEST(FederationFaults, MemberFaultTearsDownMateWhenHalfUncarried) {
  const auto net = networks::build_cantor({4, 0});
  Federation fed(net, 2, fed_cfg(Backend::kGreedy));
  const FedOutcome o = fed.call(
      {fed.global_of(0, 2), fed.global_of(1, 2), 0, 55});
  ASSERT_TRUE(o.connected());
  // Kill EVERY switch of member 0. Along the way the ingress half may be
  // adopted (member rerouted it) or torn down and re-admitted end-to-end;
  // we track the call's CURRENT handle through the impact reports. Once the
  // member is fully dead, a teardown's re-admission must fail typed, both
  // halves are gone, and the last retained handle acks kFaulted.
  FedCallId current = o.id;
  std::uint64_t torn = 0;
  for (graph::EdgeId e = 0; e < net.g.edge_count(); ++e) {
    fault::FaultEvent ev;
    ev.edge = e;
    ev.kind = fault::FaultEvent::Kind::kFail;
    const FedFaultImpact imp = fed.inject(0, ev);
    torn += imp.mates_torn_down;
    ASSERT_EQ(imp.killed.size(), imp.reroutes.size());
    for (std::size_t i = 0; i < imp.killed.size(); ++i) {
      EXPECT_EQ(imp.killed[i].reject, RejectReason::kFaulted);
      EXPECT_EQ(imp.killed[i].tag, 55u);  // re-admission preserves the tag
      EXPECT_TRUE(imp.killed[i].id == current);
      if (imp.reroutes[i].connected()) current = imp.reroutes[i].id;
    }
  }
  ASSERT_GE(torn, 1u);
  // Both halves are gone and every trunk line is free again.
  EXPECT_EQ(fed.active_inter_calls(), 0u);
  EXPECT_EQ(fed.member(1).active_calls(), 0u);
  EXPECT_EQ(total_occupancy(fed), 0u);
  EXPECT_EQ(fed.hangup(current), RejectReason::kFaulted);  // typed ack
  const FederationStats st = fed.stats();
  EXPECT_EQ(st.mates_torn_down, torn);
  EXPECT_GE(st.reroute_failed, 1u);  // the final re-admission had no routes
  EXPECT_EQ(st.handle_errors, 0u);
}

TEST(FederationBatched, MixedTrafficDrainsAndPolls) {
  const auto net = networks::build_cantor({4, 0});
  Federation fed(net, 2, fed_cfg(Backend::kGreedy));
  std::vector<Ticket> tickets;
  // Mixed window: intra shard 0, intra shard 1, inter both directions.
  tickets.push_back(fed.submit({fed.global_of(0, 0), fed.global_of(0, 1), 0, 0}));
  tickets.push_back(fed.submit({fed.global_of(1, 0), fed.global_of(1, 1), 0, 1}));
  tickets.push_back(fed.submit({fed.global_of(0, 2), fed.global_of(1, 2), 0, 2}));
  tickets.push_back(fed.submit({fed.global_of(1, 3), fed.global_of(0, 3), 0, 3}));
  EXPECT_EQ(fed.pending(), 4u);
  EXPECT_EQ(fed.drain(), 4u);
  EXPECT_EQ(fed.pending(), 0u);
  std::vector<FedCallId> held;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const auto o = fed.poll(tickets[i]);
    ASSERT_TRUE(o.has_value()) << "ticket " << i;
    ASSERT_TRUE(o->connected()) << "ticket " << i;
    EXPECT_EQ(o->tag, i);
    EXPECT_EQ(o->id.inter(), i >= 2);
    held.push_back(o->id);
    EXPECT_FALSE(fed.poll(tickets[i]).has_value());  // take-once
  }
  EXPECT_EQ(fed.active_inter_calls(), 2u);
  const FederationStats st = fed.stats();
  EXPECT_EQ(st.intra_calls, 2u);
  EXPECT_EQ(st.inter_calls, 2u);
  EXPECT_EQ(st.inter_connected, 2u);
  for (const FedCallId id : held) EXPECT_EQ(fed.hangup(id), RejectReason::kNone);
  EXPECT_EQ(fed.busy_vertices(), 0u);

  // Callback flavour + out-of-range terminal through the batched plane.
  FedOutcome cb_out;
  int cb_calls = 0;
  fed.submit({static_cast<std::uint32_t>(fed.input_count()), 0, 0, 9},
             [&](const FedOutcome& o) {
               cb_out = o;
               ++cb_calls;
             });
  EXPECT_EQ(fed.drain_all(), 1u);
  EXPECT_EQ(cb_calls, 1);
  EXPECT_EQ(cb_out.reject, RejectReason::kBadSession);
  EXPECT_EQ(cb_out.tag, 9u);
}

TEST(FederationBatched, TrunkExhaustionBouncesTypedWithinEpoch) {
  const auto net = networks::build_cantor({4, 0});
  Federation fed(net, 2, fed_cfg(Backend::kGreedy));
  std::uint32_t lines_01 = 0;
  for (const auto g : fed.groups_between(0, 1))
    lines_01 += fed.trunk_group(g).capacity();
  ASSERT_GT(lines_01, 0u);
  // Submit more 0->1 inter calls than there are trunk lines.
  const std::uint32_t want = lines_01 + 3;
  ASSERT_LE(want, fed.subscribers_per_member());
  std::vector<Ticket> tickets;
  for (std::uint32_t i = 0; i < want; ++i)
    tickets.push_back(
        fed.submit({fed.global_of(0, i), fed.global_of(1, i), 0, i}));
  EXPECT_EQ(fed.drain(), want);
  std::uint32_t connected = 0, trunk_busy = 0;
  std::vector<FedCallId> held;
  for (const Ticket t : tickets) {
    const auto o = fed.poll(t);
    ASSERT_TRUE(o.has_value());
    if (o->connected()) {
      ++connected;
      held.push_back(o->id);
    } else {
      EXPECT_EQ(o->reject, RejectReason::kTrunkBusy);
      EXPECT_EQ(o->stage, FedStage::kTrunk);
      ++trunk_busy;
    }
  }
  EXPECT_EQ(connected, lines_01);
  EXPECT_EQ(trunk_busy, 3u);
  for (const FedCallId id : held) EXPECT_EQ(fed.hangup(id), RejectReason::kNone);
  EXPECT_EQ(total_occupancy(fed), 0u);
  EXPECT_EQ(fed.busy_vertices(), 0u);
}

TEST(FederationStatsMerge, RoundTripCoversTrunkAndHalfCallCounters) {
  // Build a federation, run traffic that moves EVERY new counter family,
  // then check the merge algebra: (a += b) -= b restores a exactly.
  FederationStats a;
  a.members.submitted = 11;
  a.members.router.accepted = 7;
  a.trunks = TrunkGroupStats{10, 9, 8, 2, 1};
  a.intra_calls = 21;
  a.inter_calls = 13;
  a.inter_connected = 12;
  a.trunk_rejects = 3;
  a.ingress_aborts = 4;
  a.egress_aborts = 5;
  a.half_calls_routed = 24;
  a.inter_hangups = 11;
  a.calls_killed_by_trunk_fault = 2;
  a.mates_adopted = 1;
  a.mates_torn_down = 1;
  a.reroute_succeeded = 2;
  a.reroute_failed = 1;
  a.handle_errors = 6;
  FederationStats b;
  b.members.submitted = 5;
  b.members.router.accepted = 4;
  b.trunks = TrunkGroupStats{5, 4, 3, 2, 1};
  b.intra_calls = 1;
  b.inter_calls = 2;
  b.inter_connected = 3;
  b.trunk_rejects = 4;
  b.ingress_aborts = 5;
  b.egress_aborts = 6;
  b.half_calls_routed = 7;
  b.inter_hangups = 8;
  b.calls_killed_by_trunk_fault = 9;
  b.mates_adopted = 10;
  b.mates_torn_down = 11;
  b.reroute_succeeded = 12;
  b.reroute_failed = 13;
  b.handle_errors = 14;

  FederationStats m = a;
  m += b;
  EXPECT_EQ(m.trunks.claims, 15u);
  EXPECT_EQ(m.trunks.repairs, 2u);
  EXPECT_EQ(m.half_calls_routed, 31u);
  EXPECT_EQ(m.mates_torn_down, 12u);
  m -= b;
  EXPECT_EQ(m.members.submitted, a.members.submitted);
  EXPECT_EQ(m.members.router.accepted, a.members.router.accepted);
  EXPECT_EQ(m.trunks.claims, a.trunks.claims);
  EXPECT_EQ(m.trunks.releases, a.trunks.releases);
  EXPECT_EQ(m.trunks.rejects, a.trunks.rejects);
  EXPECT_EQ(m.trunks.faults, a.trunks.faults);
  EXPECT_EQ(m.trunks.repairs, a.trunks.repairs);
  EXPECT_EQ(m.intra_calls, a.intra_calls);
  EXPECT_EQ(m.inter_calls, a.inter_calls);
  EXPECT_EQ(m.inter_connected, a.inter_connected);
  EXPECT_EQ(m.trunk_rejects, a.trunk_rejects);
  EXPECT_EQ(m.ingress_aborts, a.ingress_aborts);
  EXPECT_EQ(m.egress_aborts, a.egress_aborts);
  EXPECT_EQ(m.half_calls_routed, a.half_calls_routed);
  EXPECT_EQ(m.inter_hangups, a.inter_hangups);
  EXPECT_EQ(m.calls_killed_by_trunk_fault, a.calls_killed_by_trunk_fault);
  EXPECT_EQ(m.mates_adopted, a.mates_adopted);
  EXPECT_EQ(m.mates_torn_down, a.mates_torn_down);
  EXPECT_EQ(m.reroute_succeeded, a.reroute_succeeded);
  EXPECT_EQ(m.reroute_failed, a.reroute_failed);
  EXPECT_EQ(m.handle_errors, a.handle_errors);

  // Delta semantics against a LIVE federation: a scrape-style before/after
  // difference carries exactly the interval's trunk/half-call activity.
  const auto net = networks::build_cantor({4, 0});
  Federation fed(net, 2, fed_cfg(Backend::kGreedy));
  const FederationStats before = fed.stats();
  const FedOutcome o = fed.call(
      {fed.global_of(0, 0), fed.global_of(1, 0), 0, 0});
  ASSERT_TRUE(o.connected());
  EXPECT_EQ(fed.hangup(o.id), RejectReason::kNone);
  FederationStats delta = fed.stats();
  delta -= before;
  EXPECT_EQ(delta.inter_calls, 1u);
  EXPECT_EQ(delta.inter_connected, 1u);
  EXPECT_EQ(delta.half_calls_routed, 2u);
  EXPECT_EQ(delta.inter_hangups, 1u);
  EXPECT_EQ(delta.trunks.claims, 1u);
  EXPECT_EQ(delta.trunks.releases, 1u);
  EXPECT_EQ(delta.intra_calls, 0u);
}

}  // namespace
}  // namespace ftcs::svc
