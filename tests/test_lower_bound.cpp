#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/algorithms.hpp"

#include "ftcs/lower_bound.hpp"
#include "networks/benes.hpp"
#include "networks/crossbar.hpp"

namespace ftcs::core {
namespace {

std::size_t undirected_degree(const graph::CsrGraph& g, graph::VertexId v) {
  return g.degree(v);
}

std::size_t count_leaves(const graph::CsrGraph& g) {
  std::size_t leaves = 0;
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v)
    if (undirected_degree(g, v) == 1) ++leaves;
  return leaves;
}

TEST(RandomCubicTree, LeafCountAndDegrees) {
  for (std::size_t l : {2u, 3u, 5u, 20u, 100u}) {
    const auto t = random_cubic_tree(l, 7);
    EXPECT_EQ(count_leaves(t), l);
    EXPECT_EQ(t.edge_count(), t.vertex_count() - 1);  // tree
    for (graph::VertexId v = 0; v < t.vertex_count(); ++v) {
      const auto d = undirected_degree(t, v);
      EXPECT_TRUE(d == 1 || d == 3) << "vertex " << v << " degree " << d;
    }
  }
}

TEST(ExtractLeafPaths, PathStar) {
  // Star with 3 leaves: all pairs at distance 2; maximal family has 1 path.
  graph::GraphBuilder gb(4);
  gb.add_edge(0, 1);
  gb.add_edge(0, 2);
  gb.add_edge(0, 3);
  const auto paths = extract_leaf_paths(gb.finalize());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 3u);  // leaf - center - leaf
}

TEST(ExtractLeafPaths, SingleEdge) {
  graph::GraphBuilder gb(2);
  gb.add_edge(0, 1);
  const auto paths = extract_leaf_paths(gb.finalize());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 2u);
}

TEST(ExtractLeafPaths, PathsAreValidAndEdgeDisjoint) {
  const auto t = random_cubic_tree(60, 3);
  const auto paths = extract_leaf_paths(t);
  std::set<std::pair<graph::VertexId, graph::VertexId>> used_edges;
  for (const auto& p : paths) {
    ASSERT_GE(p.size(), 2u);
    ASSERT_LE(p.size(), 4u);  // <= 3 edges
    // Endpoints are leaves.
    EXPECT_EQ(undirected_degree(t, p.front()), 1u);
    EXPECT_EQ(undirected_degree(t, p.back()), 1u);
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      const auto key = std::minmax(p[i], p[i + 1]);
      EXPECT_TRUE(used_edges.insert({key.first, key.second}).second)
          << "edge reused";
      // Edge exists in the tree (either direction).
      bool found = false;
      for (graph::EdgeId e : t.out_edges(p[i])) found |= t.edge(e).to == p[i + 1];
      for (graph::EdgeId e : t.in_edges(p[i])) found |= t.edge(e).from == p[i + 1];
      EXPECT_TRUE(found);
    }
  }
}

TEST(ExtractLeafPaths, Lemma1BoundHolds) {
  // Lemma 1: at least l/42 paths (empirically much closer to l/4).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (std::size_t l : {42u, 100u, 400u}) {
      const auto t = random_cubic_tree(l, seed);
      const auto paths = extract_leaf_paths(t);
      EXPECT_GE(paths.size(), l / 42) << "l=" << l << " seed=" << seed;
    }
  }
}

TEST(LeafCensus, InvariantsAndProofBounds) {
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    const auto t = random_cubic_tree(200, seed);
    const auto census = leaf_census(t);
    EXPECT_EQ(census.leaves, 200u);
    EXPECT_EQ(census.good + census.bad, census.leaves);
    EXPECT_EQ(census.lucky, 2 * census.paths);
    EXPECT_EQ(census.lucky + census.unlucky, census.good);
    // Proof bounds: bad <= 6l/7; paths >= good/6 >= l/42.
    EXPECT_LE(census.bad, census.leaves * 6 / 7);
    EXPECT_GE(census.paths, census.good / 6);
  }
}

TEST(ReduceToDegree3, CapsDegrees) {
  // Star with 6 leaves: center has degree 6 -> replaced by 4-node chain.
  graph::GraphBuilder gb(7);
  for (graph::VertexId leaf = 1; leaf <= 6; ++leaf) gb.add_edge(0, leaf);
  const auto reduced = reduce_to_degree3(gb.finalize());
  EXPECT_EQ(count_leaves(reduced), 6u);
  for (graph::VertexId v = 0; v < reduced.vertex_count(); ++v)
    EXPECT_LE(undirected_degree(reduced, v), 3u);
  // Still a tree: edges = vertices - 1.
  EXPECT_EQ(reduced.edge_count(), reduced.vertex_count() - 1);
}

TEST(ReduceToDegree3, LeavesPreservedOnCubicTree) {
  const auto t = random_cubic_tree(30, 5);
  const auto reduced = reduce_to_degree3(t);
  EXPECT_EQ(count_leaves(reduced), 30u);
  EXPECT_EQ(reduced.vertex_count(), t.vertex_count());  // nothing to expand
}

TEST(NearestInputDistances, CrossbarAllAtDistanceTwo) {
  // Inputs share outputs: undirected distance 2 between any two inputs.
  const auto net = networks::build_crossbar(4);
  const auto dist = nearest_input_distances(net, 5);
  for (auto d : dist) EXPECT_EQ(d, 2u);
}

TEST(NearestInputDistances, RespectsRadius) {
  const auto net = networks::build_crossbar(4);
  const auto dist = nearest_input_distances(net, 1);
  for (auto d : dist) EXPECT_EQ(d, graph::kUnreachable);
}

TEST(Lemma2, FindsShortPathsOnCrossbar) {
  const auto net = networks::build_crossbar(16);
  const auto result = lemma2_short_paths(net, 4);
  EXPECT_EQ(result.close_inputs, 16u);
  EXPECT_GT(result.short_paths.size(), 0u);
  // Paper bound: at least close_inputs / 84 edge-disjoint short paths.
  EXPECT_GE(result.short_paths.size(), result.close_inputs / 84);
  // Paths are edge-disjoint and of length <= 3j.
  std::set<graph::EdgeId> used;
  for (const auto& p : result.short_paths) {
    EXPECT_LE(p.size(), 3u * 4u);
    EXPECT_GE(p.size(), 1u);
    for (graph::EdgeId e : p) EXPECT_TRUE(used.insert(e).second);
  }
}

TEST(Lemma2, PathsJoinTwoInputs) {
  const auto net = networks::build_crossbar(8);
  const auto result = lemma2_short_paths(net, 3);
  std::vector<std::uint8_t> is_input(net.g.vertex_count(), 0);
  for (auto v : net.inputs) is_input[v] = 1;
  for (const auto& p : result.short_paths) {
    // Walk the edge sequence as an undirected path; endpoints must be inputs.
    // Reconstruct endpoints: vertices appearing an odd number of times.
    std::map<graph::VertexId, int> incidence;
    for (graph::EdgeId e : p) {
      ++incidence[net.g.edge(e).from];
      ++incidence[net.g.edge(e).to];
    }
    std::vector<graph::VertexId> odd;
    for (const auto& [v, c] : incidence)
      if (c % 2) odd.push_back(v);
    ASSERT_EQ(odd.size(), 2u);
    EXPECT_TRUE(is_input[odd[0]]);
    EXPECT_TRUE(is_input[odd[1]]);
  }
}

TEST(Lemma2, NoClosePairsOnSeparatedNet) {
  // Two disjoint chains: inputs cannot reach each other.
  graph::NetworkBuilder nb;
  nb.g.add_vertices(6);
  nb.g.add_edge(0, 2);
  nb.g.add_edge(2, 4);
  nb.g.add_edge(1, 3);
  nb.g.add_edge(3, 5);
  nb.inputs = {0, 1};
  nb.outputs = {4, 5};
  const graph::Network net = nb.finalize();
  const auto result = lemma2_short_paths(net, 10);
  EXPECT_EQ(result.close_inputs, 0u);
  EXPECT_TRUE(result.short_paths.empty());
}

TEST(Theorem1, CertificateOnBenes) {
  const networks::Benes b(4);  // n = 16
  // Inputs of a Beneš are far apart: nearest input at undirected distance 2
  // (via a shared first-stage switch pair)? Actually inputs connect only
  // forward; two inputs share a stage-1 vertex => distance 2.
  const auto cert = theorem1_certificate(b.network(), 3, 2);
  EXPECT_EQ(cert.n, 16u);
  EXPECT_EQ(cert.depth, 8u);
  // With D = 3 no input is "good" (all have a neighbor at distance 2).
  EXPECT_EQ(cert.good_inputs, 0u);
  const auto cert2 = theorem1_certificate(b.network(), 2, 2);
  EXPECT_EQ(cert2.good_inputs, 16u);
  EXPECT_GT(cert2.min_zone_size, 0u);
  EXPECT_GE(cert2.sum_ball_size, cert2.min_ball_size * cert2.good_inputs);
}

TEST(Theorem1, BallsAreDisjointForGoodInputs) {
  // The proof's key step: for good inputs the balls of radius H = D/2 are
  // disjoint, so sum_ball_size <= total edges.
  const networks::Benes b(3);
  const auto cert = theorem1_certificate(b.network(), 2, 1);
  EXPECT_LE(cert.sum_ball_size, b.network().g.edge_count());
}

}  // namespace
}  // namespace ftcs::core
