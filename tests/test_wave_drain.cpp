// Epoch-wave routing (connect_wave / ExchangeConfig::wave_drain)
// equivalence pins.
//
// The contract (router headers + src/svc/README.md): routing an admission
// window as one multi-source wave must produce the SAME admitted/rejected
// books as routing it per-request in window order — terminal verdicts via
// the tentative-hold/defer discipline, kNoPath only from a final solo
// search, demotions invisible in the verdicts. On the layered nets the
// terminals are never interior hops (inputs have in-degree 0, outputs
// out-degree 0), so per-request verdicts must match EXACTLY, not just in
// aggregate.
//
//  - crafted windows pin the defer discipline: a duplicate slot held by a
//    window-mate resolves exactly as sequential routing would order it;
//  - a fixed multi-window churn trace must keep wave and per-request
//    GreedyRouters verdict-for-verdict in lockstep;
//  - the same crafted windows through the concurrent Worker's CAS-claimed
//    wave;
//  - svc::Exchange: wave_drain on/off must deliver identical Outcomes for
//    an identical submit trace, on both engine backends.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ftcs/concurrent_router.hpp"
#include "ftcs/router.hpp"
#include "networks/cantor.hpp"
#include "networks/crossbar.hpp"
#include "svc/exchange.hpp"
#include "util/prng.hpp"

namespace ftcs {
namespace {

constexpr auto kNone = static_cast<std::uint32_t>(-1);

core::WaveItem item(std::uint32_t in, std::uint32_t out) {
  core::WaveItem it;
  it.in = in;
  it.out = out;
  return it;
}

TEST(WaveRouting, DuplicateSlotDefersToWindowOrderVerdict) {
  const auto net = networks::build_crossbar(4);
  core::GreedyRouter r(net);
  // Item 1 wants input 0 while item 0 (earlier in the window) holds it:
  // item 0 settles, so item 1's verdict is kTerminal — exactly what
  // sequential routing would say. Item 2's slots are untouched.
  std::vector<core::WaveItem> w{item(0, 0), item(0, 1), item(1, 1)};
  r.connect_wave(w.data(), w.size());
  ASSERT_NE(w[0].call, kNone);
  EXPECT_EQ(w[1].call, kNone);
  EXPECT_EQ(w[1].reject, core::WaveReject::kTerminal);
  ASSERT_NE(w[2].call, kNone);
  EXPECT_EQ(r.stats().accepted, 2u);
  EXPECT_EQ(r.stats().rejected_terminal, 1u);
  EXPECT_GT(r.stats().wave_epochs, 0u);
  r.disconnect(w[0].call);
  r.disconnect(w[2].call);
  EXPECT_EQ(r.busy_vertices(), 0u);
}

TEST(WaveRouting, RejectedHolderFreesSlotForDeferredMate) {
  const auto net = networks::build_crossbar(4);
  // Blocking edge 0 (input 0 -> output 0) leaves the terminals idle but
  // removes the only path between them: item 0 must reject kNoPath via its
  // FINAL solo search, releasing input 0 for the deferred item 1 — again
  // the sequential verdict sequence.
  std::vector<std::uint8_t> blocked_edges(net.g.edge_count(), 0);
  blocked_edges[0] = 1;
  core::GreedyRouter r(net, {}, blocked_edges);
  std::vector<core::WaveItem> w{item(0, 0), item(0, 1)};
  r.connect_wave(w.data(), w.size());
  EXPECT_EQ(w[0].call, kNone);
  EXPECT_EQ(w[0].reject, core::WaveReject::kNoPath);
  ASSERT_NE(w[1].call, kNone);
  EXPECT_GE(r.stats().wave_epochs, 2u);  // the deferred mate needed round 2
  r.disconnect(w[1].call);
  EXPECT_EQ(r.busy_vertices(), 0u);
}

TEST(WaveRouting, ConcurrentWorkerWaveMatchesCraftedVerdicts) {
  const auto net = networks::build_crossbar(4);
  {
    core::ConcurrentRouter router(net, 1);
    auto& worker = router.worker(0);
    std::vector<core::WaveItem> w{item(0, 0), item(0, 1), item(1, 1)};
    worker.connect_wave(w.data(), w.size());
    ASSERT_NE(w[0].call, kNone);
    EXPECT_EQ(w[1].call, kNone);
    EXPECT_EQ(w[1].reject, core::WaveReject::kTerminal);
    ASSERT_NE(w[2].call, kNone);
    worker.disconnect(w[0].call);
    worker.disconnect(w[2].call);
    EXPECT_EQ(router.busy_vertices(), 0u);
  }
  {
    std::vector<std::uint8_t> blocked_edges(net.g.edge_count(), 0);
    blocked_edges[0] = 1;
    core::ConcurrentRouter router(net, 1, {}, blocked_edges);
    auto& worker = router.worker(0);
    std::vector<core::WaveItem> w{item(0, 0), item(0, 1)};
    worker.connect_wave(w.data(), w.size());
    EXPECT_EQ(w[0].call, kNone);
    EXPECT_EQ(w[0].reject, core::WaveReject::kNoPath);
    ASSERT_NE(w[1].call, kNone);
    worker.disconnect(w[1].call);
    EXPECT_EQ(router.busy_vertices(), 0u);
  }
}

TEST(WaveRouting, GreedyWaveMatchesSequentialBooksOnFixedTrace) {
  const auto net = networks::build_cantor({4, 0});
  core::GreedyRouter wave(net);
  core::GreedyRouter seq(net);
  const auto n = static_cast<std::uint32_t>(net.inputs.size());
  util::Xoshiro256 rng(31337);
  std::vector<core::GreedyRouter::CallId> wave_calls, seq_calls;
  std::size_t accepted = 0;

  for (int window = 0; window < 6; ++window) {
    std::vector<core::WaveItem> items(48);
    for (auto& it : items) {
      it = item(static_cast<std::uint32_t>(rng.below(n)),
                static_cast<std::uint32_t>(rng.below(n)));
    }
    wave.connect_wave(items.data(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      // The sequential reference classifies the rejection the same way the
      // wave's phases do: busy slot first, search verdict second.
      const bool term = !seq.input_idle(items[i].in) ||
                        !seq.output_idle(items[i].out);
      const auto c = seq.connect(items[i].in, items[i].out);
      ASSERT_EQ(items[i].call == kNone, c == core::GreedyRouter::kNoCall)
          << "wave/sequential verdict divergence, window " << window
          << " item " << i;
      if (c == core::GreedyRouter::kNoCall) {
        EXPECT_EQ(items[i].reject,
                  term ? core::WaveReject::kTerminal
                       : core::WaveReject::kNoPath)
            << "rejection class divergence, window " << window << " item "
            << i;
        continue;
      }
      EXPECT_EQ(items[i].path_length, wave.path_length(items[i].call));
      wave_calls.push_back(items[i].call);
      seq_calls.push_back(c);
      ++accepted;
    }
    // Churn between windows — SAME victims on both routers, so the slot
    // occupancy (the verdict-relevant state) stays in lockstep.
    for (std::size_t k = 0; k < wave_calls.size();) {
      if (rng.below(2) == 0) {
        wave.disconnect(wave_calls[k]);
        seq.disconnect(seq_calls[k]);
        wave_calls[k] = wave_calls.back();
        wave_calls.pop_back();
        seq_calls[k] = seq_calls.back();
        seq_calls.pop_back();
      } else {
        ++k;
      }
    }
  }
  ASSERT_GT(accepted, 0u);

  const auto& sw = wave.stats();
  const auto& ss = seq.stats();
  EXPECT_EQ(sw.connect_calls, ss.connect_calls);
  EXPECT_EQ(sw.accepted, ss.accepted);
  EXPECT_EQ(sw.rejected_terminal, ss.rejected_terminal);
  EXPECT_EQ(sw.rejected_no_path, ss.rejected_no_path);
  EXPECT_GT(sw.wave_epochs, 0u);
  EXPECT_EQ(ss.wave_epochs, 0u);

  for (const auto c : wave_calls) wave.disconnect(c);
  for (const auto c : seq_calls) seq.disconnect(c);
  EXPECT_EQ(wave.busy_vertices(), 0u);
  EXPECT_EQ(seq.busy_vertices(), 0u);
  EXPECT_EQ(wave.active_calls(), 0u);
}

TEST(WaveRouting, ExchangeWaveDrainMatchesPerRequestDrain) {
  const auto net = networks::build_cantor({4, 0});
  const auto n = static_cast<std::uint32_t>(net.inputs.size());
  for (const svc::Backend backend :
       {svc::Backend::kGreedy, svc::Backend::kConcurrent}) {
    svc::ExchangeConfig ca;
    ca.backend = backend;
    ca.sessions = 1;  // one session: both drains are fully deterministic
    ca.wave_drain = true;
    svc::ExchangeConfig cb;
    cb.backend = backend;
    cb.sessions = 1;
    cb.wave_drain = false;
    svc::Exchange a(net, std::move(ca));
    svc::Exchange b(net, std::move(cb));

    // Identical submit trace (mixed priorities: the admission window is
    // priority-ordered, FIFO among equals — identical for both configs).
    util::Xoshiro256 rng(4242);
    std::vector<svc::Ticket> ta, tb;
    constexpr std::size_t kRequests = 96;
    for (std::size_t i = 0; i < kRequests; ++i) {
      svc::CallRequest req;
      req.input = static_cast<std::uint32_t>(rng.below(n));
      req.output = static_cast<std::uint32_t>(rng.below(n));
      req.priority = static_cast<std::uint8_t>(rng.below(3));
      req.tag = i;
      ta.push_back(a.submit(req));
      tb.push_back(b.submit(req));
    }
    a.drain_all();
    b.drain_all();

    std::size_t connected = 0;
    std::vector<svc::CallId> live_a, live_b;
    for (std::size_t i = 0; i < kRequests; ++i) {
      const auto oa = a.poll(ta[i]);
      const auto ob = b.poll(tb[i]);
      ASSERT_TRUE(oa.has_value());
      ASSERT_TRUE(ob.has_value());
      EXPECT_EQ(oa->reject, ob->reject)
          << "wave/per-request outcome divergence for request " << i;
      EXPECT_EQ(oa->deferrals, ob->deferrals);
      EXPECT_EQ(oa->tag, i);
      EXPECT_EQ(ob->tag, i);
      if (oa->connected()) {
        EXPECT_GT(oa->path_length, 0u);
        live_a.push_back(oa->id);
        ++connected;
      }
      if (ob->connected()) live_b.push_back(ob->id);
    }
    ASSERT_GT(connected, 0u);
    EXPECT_EQ(live_a.size(), live_b.size());
    EXPECT_EQ(a.active_calls(), b.active_calls());

    const auto sa = a.stats();
    const auto sb = b.stats();
    EXPECT_EQ(sa.admitted, sb.admitted);
    EXPECT_EQ(sa.completed, sb.completed);
    EXPECT_EQ(sa.router.accepted, sb.router.accepted);
    EXPECT_EQ(sa.router.rejected_terminal, sb.router.rejected_terminal);
    EXPECT_EQ(sa.router.rejected_no_path, sb.router.rejected_no_path);
    EXPECT_GT(sa.router.wave_epochs, 0u) << "wave drain never waved";
    EXPECT_EQ(sb.router.wave_epochs, 0u);

    for (const auto id : live_a) EXPECT_EQ(a.hangup(id), svc::RejectReason::kNone);
    for (const auto id : live_b) EXPECT_EQ(b.hangup(id), svc::RejectReason::kNone);
    EXPECT_EQ(a.busy_vertices(), 0u);
    EXPECT_EQ(b.busy_vertices(), 0u);
  }
}

}  // namespace
}  // namespace ftcs
