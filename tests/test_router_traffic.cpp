#include <gtest/gtest.h>

#include "ftcs/router.hpp"
#include "ftcs/traffic.hpp"
#include "networks/clos.hpp"
#include "networks/crossbar.hpp"
#include "svc/exchange.hpp"

namespace ftcs::core {
namespace {

TEST(Router, ConnectDisconnectLifecycle) {
  const auto net = networks::build_crossbar(4);
  GreedyRouter router(net);
  EXPECT_TRUE(router.input_idle(0));
  const auto call = router.connect(0, 2);
  ASSERT_NE(call, GreedyRouter::kNoCall);
  EXPECT_FALSE(router.input_idle(0));
  EXPECT_FALSE(router.output_idle(2));
  EXPECT_EQ(router.active_calls(), 1u);
  EXPECT_EQ(router.path_of(call).size(), 2u);
  router.disconnect(call);
  EXPECT_TRUE(router.input_idle(0));
  EXPECT_TRUE(router.output_idle(2));
  EXPECT_EQ(router.active_calls(), 0u);
  EXPECT_EQ(router.busy_vertices(), 0u);
}

TEST(Router, RejectsBusyTerminals) {
  const auto net = networks::build_crossbar(3);
  GreedyRouter router(net);
  const auto c1 = router.connect(0, 0);
  ASSERT_NE(c1, GreedyRouter::kNoCall);
  EXPECT_EQ(router.connect(0, 1), GreedyRouter::kNoCall);
  EXPECT_EQ(router.connect(1, 0), GreedyRouter::kNoCall);
  EXPECT_NE(router.connect(1, 1), GreedyRouter::kNoCall);
}

TEST(Router, BlockedVerticesNeverUsed) {
  const auto net = networks::build_crossbar(3);
  std::vector<std::uint8_t> blocked(net.g.vertex_count(), 0);
  blocked[net.inputs[1]] = 1;
  GreedyRouter router(net, blocked);
  EXPECT_FALSE(router.input_idle(1));
  EXPECT_EQ(router.connect(1, 0), GreedyRouter::kNoCall);
  EXPECT_NE(router.connect(0, 0), GreedyRouter::kNoCall);
}

TEST(Router, SlotReuseAfterDisconnect) {
  const auto net = networks::build_crossbar(4);
  GreedyRouter router(net);
  const auto c1 = router.connect(0, 0);
  router.disconnect(c1);
  const auto c2 = router.connect(1, 1);
  EXPECT_EQ(c1, c2);  // slot reused
  router.disconnect(c2);
}

TEST(Router, FullLoadOnCrossbar) {
  const auto net = networks::build_crossbar(5);
  GreedyRouter router(net);
  for (std::uint32_t i = 0; i < 5; ++i)
    ASSERT_NE(router.connect(i, (i + 2) % 5), GreedyRouter::kNoCall);
  EXPECT_EQ(router.active_calls(), 5u);
}

/// The report's call counters must be exactly the exchange's counter
/// deltas — one set of books (the double-bookkeeping fix).
void expect_report_agrees_with_stats(const TrafficReport& report) {
  const core::RouterStats& r = report.service.router;
  EXPECT_EQ(report.offered, r.connect_calls);
  EXPECT_EQ(report.carried, r.accepted);
  EXPECT_EQ(report.carried + report.blocked, report.offered);
  EXPECT_EQ(report.blocked,
            r.rejected_no_path + r.rejected_contention + r.rejected_terminal);
  // The simulator pre-checks terminal idleness, so nothing should ever be
  // rejected at a terminal by the engine on the single-session plane.
  EXPECT_EQ(r.rejected_terminal, 0u);
  // Every carried call is hung up by the end of the run.
  EXPECT_EQ(report.service.hangups, report.carried);
  EXPECT_EQ(report.service.handle_errors, 0u);
}

TEST(Traffic, LightLoadNoBlockingOnStrictClos) {
  const auto net = networks::build_clos({2, 3, 4});  // strictly nonblocking
  TrafficParams p;
  p.arrival_rate = 0.5;
  p.mean_holding = 1.0;
  p.sim_time = 2000;
  p.seed = 3;
  // The same simulation must hold on BOTH engine backends.
  for (const svc::Backend backend :
       {svc::Backend::kGreedy, svc::Backend::kConcurrent}) {
    svc::ExchangeConfig cfg;
    cfg.backend = backend;
    svc::Exchange exchange(net, std::move(cfg));
    const auto report = simulate_traffic(exchange, p);
    EXPECT_GT(report.offered, 500u);
    EXPECT_EQ(report.blocked, 0u);  // strictly nonblocking: never blocks
    EXPECT_EQ(report.carried, report.offered);
    EXPECT_GT(report.mean_path_length, 0.0);
    expect_report_agrees_with_stats(report);
  }
}

TEST(Traffic, BothBackendsProduceIdenticalReports) {
  const auto net = networks::build_crossbar(8);
  TrafficParams p;
  p.arrival_rate = 2.0;
  p.mean_holding = 1.0;
  p.sim_time = 800;
  p.seed = 9;
  svc::Exchange greedy(net, {});
  svc::ExchangeConfig ccfg;
  ccfg.backend = svc::Backend::kConcurrent;
  ccfg.sessions = 1;
  svc::Exchange concurrent(net, std::move(ccfg));
  const auto a = simulate_traffic(greedy, p);
  const auto b = simulate_traffic(concurrent, p);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.carried, b.carried);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.terminal_busy, b.terminal_busy);
  EXPECT_DOUBLE_EQ(a.mean_active, b.mean_active);
  EXPECT_DOUBLE_EQ(a.mean_path_length, b.mean_path_length);
  EXPECT_EQ(a.service.router.vertices_visited, b.service.router.vertices_visited);
  EXPECT_EQ(a.service.router.path_vertices, b.service.router.path_vertices);
  EXPECT_EQ(a.service.hangups, b.service.hangups);
}

TEST(Traffic, OfferedLoadMatchesLittleLaw) {
  const auto net = networks::build_crossbar(16);
  svc::Exchange exchange(net, {});
  TrafficParams p;
  p.arrival_rate = 2.0;
  p.mean_holding = 1.5;
  p.sim_time = 3000;
  p.seed = 4;
  const auto report = simulate_traffic(exchange, p);
  // Little's law: mean active ~ lambda * holding = 3 (minus terminal-busy
  // rejections, small at 16 terminals).
  EXPECT_NEAR(report.mean_active, 3.0, 0.5);
  EXPECT_EQ(report.blocked, 0u);
  expect_report_agrees_with_stats(report);
}

TEST(Traffic, SaturationDropsAtTerminals) {
  const auto net = networks::build_crossbar(2);
  svc::Exchange exchange(net, {});
  TrafficParams p;
  p.arrival_rate = 50.0;
  p.mean_holding = 1.0;
  p.sim_time = 100;
  p.seed = 5;
  const auto report = simulate_traffic(exchange, p);
  EXPECT_GT(report.terminal_busy, 0u);
  EXPECT_LE(report.mean_active, 2.01);
  expect_report_agrees_with_stats(report);
}

TEST(Traffic, ZeroFaultCrossbarAllCarried) {
  const auto net = networks::build_crossbar(8);
  svc::Exchange exchange(net, {});
  TrafficParams p;
  p.arrival_rate = 1.0;
  p.sim_time = 500;
  p.seed = 6;
  const auto report = simulate_traffic(exchange, p);
  EXPECT_EQ(report.carried + report.blocked, report.offered);
  EXPECT_EQ(report.blocked, 0u);
  expect_report_agrees_with_stats(report);
}

}  // namespace
}  // namespace ftcs::core
