#include <gtest/gtest.h>

#include "ftcs/router.hpp"
#include "ftcs/traffic.hpp"
#include "networks/clos.hpp"
#include "networks/crossbar.hpp"

namespace ftcs::core {
namespace {

TEST(Router, ConnectDisconnectLifecycle) {
  const auto net = networks::build_crossbar(4);
  GreedyRouter router(net);
  EXPECT_TRUE(router.input_idle(0));
  const auto call = router.connect(0, 2);
  ASSERT_NE(call, GreedyRouter::kNoCall);
  EXPECT_FALSE(router.input_idle(0));
  EXPECT_FALSE(router.output_idle(2));
  EXPECT_EQ(router.active_calls(), 1u);
  EXPECT_EQ(router.path_of(call).size(), 2u);
  router.disconnect(call);
  EXPECT_TRUE(router.input_idle(0));
  EXPECT_TRUE(router.output_idle(2));
  EXPECT_EQ(router.active_calls(), 0u);
  EXPECT_EQ(router.busy_vertices(), 0u);
}

TEST(Router, RejectsBusyTerminals) {
  const auto net = networks::build_crossbar(3);
  GreedyRouter router(net);
  const auto c1 = router.connect(0, 0);
  ASSERT_NE(c1, GreedyRouter::kNoCall);
  EXPECT_EQ(router.connect(0, 1), GreedyRouter::kNoCall);
  EXPECT_EQ(router.connect(1, 0), GreedyRouter::kNoCall);
  EXPECT_NE(router.connect(1, 1), GreedyRouter::kNoCall);
}

TEST(Router, BlockedVerticesNeverUsed) {
  const auto net = networks::build_crossbar(3);
  std::vector<std::uint8_t> blocked(net.g.vertex_count(), 0);
  blocked[net.inputs[1]] = 1;
  GreedyRouter router(net, blocked);
  EXPECT_FALSE(router.input_idle(1));
  EXPECT_EQ(router.connect(1, 0), GreedyRouter::kNoCall);
  EXPECT_NE(router.connect(0, 0), GreedyRouter::kNoCall);
}

TEST(Router, SlotReuseAfterDisconnect) {
  const auto net = networks::build_crossbar(4);
  GreedyRouter router(net);
  const auto c1 = router.connect(0, 0);
  router.disconnect(c1);
  const auto c2 = router.connect(1, 1);
  EXPECT_EQ(c1, c2);  // slot reused
  router.disconnect(c2);
}

TEST(Router, FullLoadOnCrossbar) {
  const auto net = networks::build_crossbar(5);
  GreedyRouter router(net);
  for (std::uint32_t i = 0; i < 5; ++i)
    ASSERT_NE(router.connect(i, (i + 2) % 5), GreedyRouter::kNoCall);
  EXPECT_EQ(router.active_calls(), 5u);
}

TEST(Traffic, LightLoadNoBlockingOnStrictClos) {
  const auto net = networks::build_clos({2, 3, 4});  // strictly nonblocking
  GreedyRouter router(net);
  TrafficParams p;
  p.arrival_rate = 0.5;
  p.mean_holding = 1.0;
  p.sim_time = 2000;
  p.seed = 3;
  const auto report = simulate_traffic(router, p);
  EXPECT_GT(report.offered, 500u);
  EXPECT_EQ(report.blocked, 0u);  // strictly nonblocking: greedy never blocks
  EXPECT_EQ(report.carried, report.offered);
  EXPECT_GT(report.mean_path_length, 0.0);
}

TEST(Traffic, OfferedLoadMatchesLittleLaw) {
  const auto net = networks::build_crossbar(16);
  GreedyRouter router(net);
  TrafficParams p;
  p.arrival_rate = 2.0;
  p.mean_holding = 1.5;
  p.sim_time = 3000;
  p.seed = 4;
  const auto report = simulate_traffic(router, p);
  // Little's law: mean active ~ lambda * holding = 3 (minus terminal-busy
  // rejections, small at 16 terminals).
  EXPECT_NEAR(report.mean_active, 3.0, 0.5);
  EXPECT_EQ(report.blocked, 0u);
}

TEST(Traffic, SaturationDropsAtTerminals) {
  const auto net = networks::build_crossbar(2);
  GreedyRouter router(net);
  TrafficParams p;
  p.arrival_rate = 50.0;
  p.mean_holding = 1.0;
  p.sim_time = 100;
  p.seed = 5;
  const auto report = simulate_traffic(router, p);
  EXPECT_GT(report.terminal_busy, 0u);
  EXPECT_LE(report.mean_active, 2.01);
}

TEST(Traffic, ZeroFaultCrossbarAllCarried) {
  const auto net = networks::build_crossbar(8);
  GreedyRouter router(net);
  TrafficParams p;
  p.arrival_rate = 1.0;
  p.sim_time = 500;
  p.seed = 6;
  const auto report = simulate_traffic(router, p);
  EXPECT_EQ(report.carried + report.blocked, report.offered);
  EXPECT_EQ(report.blocked, 0u);
}

}  // namespace
}  // namespace ftcs::core
