#include <gtest/gtest.h>

#include "fault/fault_instance.hpp"
#include "ftcs/router.hpp"
#include "graph/algorithms.hpp"
#include "graph/transform.hpp"
#include "ftcs/majority_access.hpp"
#include "networks/crossbar.hpp"

namespace ftcs::core {
namespace {

TEST(MajorityAccess, CleanCrossbarFullAccess) {
  const auto net = networks::build_crossbar(6);
  const auto report = check_majority_access(net, {});
  EXPECT_TRUE(report.majority);
  EXPECT_EQ(report.idle_inputs, 6u);
  EXPECT_EQ(report.min_access, 6u);
  EXPECT_EQ(report.required, 4u);
}

TEST(MajorityAccess, FaultyOutputsReduceAccess) {
  const auto net = networks::build_crossbar(6);
  std::vector<std::uint8_t> faulty(net.g.vertex_count(), 0);
  // Mark 3 of 6 outputs faulty: access drops to 3 < required 4.
  for (int o = 0; o < 3; ++o) faulty[net.outputs[o]] = 1;
  const auto report = check_majority_access(net, faulty);
  EXPECT_FALSE(report.majority);
  EXPECT_EQ(report.min_access, 3u);
}

TEST(MajorityAccess, ExactlyHalfIsNotMajority) {
  const auto net = networks::build_crossbar(4);
  std::vector<std::uint8_t> faulty(net.g.vertex_count(), 0);
  faulty[net.outputs[0]] = 1;
  faulty[net.outputs[1]] = 1;
  const auto report = check_majority_access(net, faulty);
  EXPECT_EQ(report.min_access, 2u);
  EXPECT_EQ(report.required, 3u);
  EXPECT_FALSE(report.majority);  // strictly more than half needed
}

TEST(MajorityAccess, BusyVerticesBlockAccess) {
  const auto net = networks::build_crossbar(4);
  std::vector<std::uint8_t> busy(net.g.vertex_count(), 0);
  busy[net.inputs[0]] = 1;   // input 0 busy -> not counted as idle
  busy[net.outputs[0]] = 1;  // one output busy for everyone
  const auto report = check_majority_access(net, {}, busy);
  EXPECT_EQ(report.idle_inputs, 3u);
  EXPECT_EQ(report.min_access, 3u);
  EXPECT_TRUE(report.majority);
}

TEST(MajorityAccess, FaultyInputSkipped) {
  const auto net = networks::build_crossbar(4);
  std::vector<std::uint8_t> faulty(net.g.vertex_count(), 0);
  faulty[net.inputs[2]] = 1;
  const auto report = check_majority_access(net, faulty);
  EXPECT_EQ(report.idle_inputs, 3u);
  EXPECT_EQ(report.access_counts[2], SIZE_MAX);
}

TEST(MajorityAccess, MirrorEqualsForwardOnSymmetricNet) {
  const auto net = networks::build_crossbar(5);
  std::vector<std::uint8_t> faulty(net.g.vertex_count(), 0);
  faulty[net.outputs[0]] = 1;
  const auto fwd = check_majority_access(net, faulty);
  const auto bwd = check_majority_access_mirror(net, faulty);
  // Forward: inputs see 4 of 5 outputs. Backward: idle outputs see all 5
  // inputs. Both majority.
  EXPECT_TRUE(fwd.majority);
  EXPECT_TRUE(bwd.majority);
  EXPECT_EQ(bwd.idle_inputs, 4u);
  EXPECT_EQ(bwd.min_access, 5u);
}

TEST(MajorityAccess, NoIdleInputsVacuouslyMajor) {
  const auto net = networks::build_crossbar(2);
  std::vector<std::uint8_t> busy(net.g.vertex_count(), 0);
  busy[net.inputs[0]] = 1;
  busy[net.inputs[1]] = 1;
  const auto report = check_majority_access(net, {}, busy);
  EXPECT_EQ(report.idle_inputs, 0u);
  EXPECT_TRUE(report.majority);
}

TEST(GridAccess, CleanGridReachesAllRows) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 10));
  const auto access = grid_access(ft, 0, {});
  EXPECT_EQ(access.rows, ft.params.grid_rows());
  EXPECT_EQ(access.accessible, access.rows);
  EXPECT_TRUE(access.majority());
}

TEST(GridAccess, FaultyInputZeroAccess) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 11));
  std::vector<std::uint8_t> faulty(ft.net.g.vertex_count(), 0);
  faulty[ft.net.inputs[0]] = 1;
  const auto access = grid_access(ft, 0, faulty);
  EXPECT_EQ(access.accessible, 0u);
  EXPECT_FALSE(access.majority());
}

TEST(GridAccess, FaultColumnCutsAccess) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 12));
  std::vector<std::uint8_t> faulty(ft.net.g.vertex_count(), 0);
  // Kill the entire first column of grid 0: nothing reachable beyond.
  for (graph::VertexId v : ft.grid_columns[0][0]) faulty[v] = 1;
  const auto access = grid_access(ft, 0, faulty);
  EXPECT_EQ(access.accessible, 0u);
}

TEST(GridAccess, PartialFaultsDegradeGracefully) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 13));
  std::vector<std::uint8_t> faulty(ft.net.g.vertex_count(), 0);
  // Disable a quarter of the first column's rows.
  const auto& col0 = ft.grid_columns[0][0];
  for (std::size_t i = 0; i < col0.size() / 4; ++i) faulty[col0[i]] = 1;
  const auto access = grid_access(ft, 0, faulty);
  // The wrap-around diagonals recover all rows within `rows` columns; with
  // only 2 columns, at least the unfaulted rows' successors are reachable.
  EXPECT_GE(access.accessible, access.rows / 2);
  EXPECT_TRUE(access.majority());
}

TEST(MajorityAccess, FtNetworkCleanInstance) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 14));
  const auto fwd = check_majority_access(ft.net, {});
  EXPECT_TRUE(fwd.majority);
  EXPECT_EQ(fwd.min_access, ft.n());
  const auto bwd = check_majority_access_mirror(ft.net, {});
  EXPECT_TRUE(bwd.majority);
}

TEST(FtMajorityAccess, CenterStageIsCoreMiddle) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 16));
  EXPECT_EQ(ft.center_stage.size(), ft.params.stage_width());
  for (graph::VertexId v : ft.center_stage)
    EXPECT_EQ(ft.net.stage[v], 2 * 2);  // stage 2*nu of N-hat (mid-depth)
}

TEST(FtMajorityAccess, CleanNetworkFullCenterAccess) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 17));
  const auto report = ft_majority_access(ft, {});
  EXPECT_TRUE(report.majority());
  EXPECT_EQ(report.forward.min_access, ft.center_stage.size());
  EXPECT_EQ(report.backward.min_access, ft.center_stage.size());
}

TEST(FtMajorityAccess, BusyPathsLeaveMajorityIntact) {
  // Lemma 6's point: established calls consume one center vertex each, so
  // center-stage majority access survives maximal load (n << width/2).
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 18));
  GreedyRouter router(ft.net);
  for (std::uint32_t i = 0; i < ft.n() / 2; ++i)
    ASSERT_NE(router.connect(i, i), GreedyRouter::kNoCall);
  const auto report = ft_majority_access(ft, {}, router.busy_mask());
  EXPECT_TRUE(report.majority());
  EXPECT_GT(report.forward.min_access, ft.center_stage.size() / 2);
}

TEST(FtMajorityAccess, MajorityImpliesSharedCenterVertex) {
  // The containment argument: fwd majority + bwd majority => any idle
  // input/output pair shares an idle center vertex (pigeonhole).
  const auto ft = build_ft_network(FtParams::sim(2, 8, 6, 1, 19));
  fault::FaultInstance inst(ft.net, fault::FaultModel::symmetric(2e-3), 4);
  const auto faulty = inst.faulty_non_terminal_mask();
  const auto report = ft_majority_access(ft, faulty);
  ASSERT_TRUE(report.majority());
  // Pigeonhole check made explicit for input 0 / output 0.
  std::vector<std::uint8_t> is_center(ft.net.g.vertex_count(), 0);
  for (auto v : ft.center_stage) is_center[v] = 1;
  const graph::VertexId in0[1] = {ft.net.inputs[0]};
  const auto dist_fwd = graph::bfs_directed(ft.net.g, in0, faulty);
  const auto mirror_net = graph::mirror(ft.net);
  const graph::VertexId out0[1] = {ft.net.outputs[0]};
  const auto dist_bwd = graph::bfs_directed(mirror_net.g, out0, faulty);
  std::size_t common = 0;
  for (auto v : ft.center_stage)
    if (dist_fwd[v] != graph::kUnreachable && dist_bwd[v] != graph::kUnreachable)
      ++common;
  EXPECT_GT(common, 0u);
}

TEST(MajorityAccess, FtNetworkUnderModerateFaults) {
  const auto ft = build_ft_network(FtParams::sim(2, 8, 6, 1, 15));
  const auto model = fault::FaultModel::symmetric(1e-4);
  fault::FaultInstance inst(ft.net, model, 99);
  const auto fwd = check_majority_access(ft.net, inst.faulty_vertices());
  EXPECT_TRUE(fwd.majority);
}

}  // namespace
}  // namespace ftcs::core
