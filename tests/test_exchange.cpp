// svc::Exchange — the session-oriented call service facade: typed
// rejections, generation-tagged handle safety, engine equivalence through
// the facade, batched admission (defer/refuse), and async completion.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "networks/cantor.hpp"
#include "networks/clos.hpp"
#include "networks/crossbar.hpp"
#include "svc/admission.hpp"
#include "svc/exchange.hpp"
#include "util/prng.hpp"

namespace ftcs::svc {
namespace {

ExchangeConfig concurrent_cfg(unsigned sessions) {
  ExchangeConfig cfg;
  cfg.backend = Backend::kConcurrent;
  cfg.sessions = sessions;
  return cfg;
}

TEST(Exchange, ImmediateCallLifecycle) {
  const auto net = networks::build_crossbar(4);
  Exchange ex(net, {});
  EXPECT_EQ(ex.sessions(), 1u);
  const Outcome o = ex.call({0, 2, 0, 77});
  ASSERT_TRUE(o.connected());
  EXPECT_TRUE(o.id.valid());
  EXPECT_EQ(o.reject, RejectReason::kNone);
  EXPECT_EQ(o.path_length, 2u);
  EXPECT_EQ(o.tag, 77u);
  EXPECT_EQ(o.session, 0u);
  EXPECT_FALSE(ex.input_idle(0));
  EXPECT_FALSE(ex.output_idle(2));
  EXPECT_EQ(ex.active_calls(), 1u);
  const auto path = ex.path_of(o.id);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path.front(), net.inputs[0]);
  EXPECT_EQ(path.back(), net.outputs[2]);
  EXPECT_EQ(ex.hangup(o.id), RejectReason::kNone);
  EXPECT_TRUE(ex.input_idle(0));
  EXPECT_EQ(ex.active_calls(), 0u);
  EXPECT_EQ(ex.busy_vertices(), 0u);
  const ExchangeStats st = ex.stats();
  EXPECT_EQ(st.router.accepted, 1u);
  EXPECT_EQ(st.hangups, 1u);
  EXPECT_EQ(st.handle_errors, 0u);
}

TEST(Exchange, TypedRejectionsOnBothBackends) {
  const auto net = networks::build_crossbar(3);
  // Edge (input 0 -> output 0) of the crossbar is edge id 0; blocking it
  // leaves the terminals idle but removes the only path between them.
  std::vector<std::uint8_t> blocked_edges(net.g.edge_count(), 0);
  blocked_edges[0] = 1;
  for (const Backend backend : {Backend::kGreedy, Backend::kConcurrent}) {
    ExchangeConfig cfg;
    cfg.backend = backend;
    cfg.blocked_edges = blocked_edges;
    Exchange ex(net, std::move(cfg));
    // No idle path despite idle terminals.
    const Outcome no_path = ex.call({0, 0});
    EXPECT_EQ(no_path.reject, RejectReason::kNoPath);
    EXPECT_FALSE(no_path.id.valid());
    // Busy terminal: no search is run.
    const Outcome held = ex.call({1, 1});
    ASSERT_TRUE(held.connected());
    const Outcome busy_in = ex.call({1, 2});
    EXPECT_EQ(busy_in.reject, RejectReason::kTerminalBusy);
    const Outcome busy_out = ex.call({2, 1});
    EXPECT_EQ(busy_out.reject, RejectReason::kTerminalBusy);
    // The shared spelling is what reports print.
    EXPECT_STREQ(to_string(no_path.reject), "rejected_no_path");
    EXPECT_STREQ(to_string(busy_in.reject), "rejected_terminal");
    const ExchangeStats st = ex.stats();
    EXPECT_EQ(st.router.rejected_no_path, 1u);
    EXPECT_EQ(st.router.rejected_terminal, 2u);
    EXPECT_EQ(ex.hangup(held.id), RejectReason::kNone);
  }
}

TEST(Exchange, StaleAndDoubleHangupAreTypedErrors) {
  const auto net = networks::build_crossbar(4);
  Exchange ex(net, {});
  const Outcome a = ex.call({0, 0});
  ASSERT_TRUE(a.connected());
  const CallId stale = a.id;
  EXPECT_EQ(ex.hangup(a.id), RejectReason::kNone);
  // Double hangup via the retained copy: detected, nothing touched.
  EXPECT_EQ(ex.hangup(stale), RejectReason::kStaleHandle);
  EXPECT_EQ(ex.hangup(stale), RejectReason::kStaleHandle);
  // Null handle.
  EXPECT_EQ(ex.hangup(CallId{}), RejectReason::kStaleHandle);
  EXPECT_EQ(ex.stats().handle_errors, 3u);
  EXPECT_EQ(ex.active_calls(), 0u);
  EXPECT_EQ(ex.busy_vertices(), 0u);
}

TEST(Exchange, StaleHandleCannotTouchReusedSlot) {
  const auto net = networks::build_crossbar(4);
  Exchange ex(net, {});
  const Outcome a = ex.call({0, 0});
  ASSERT_TRUE(a.connected());
  const CallId stale = a.id;
  ASSERT_EQ(ex.hangup(a.id), RejectReason::kNone);
  // The slot is reused for a new call; the stale handle's generation no
  // longer matches, so it cannot hang up the NEW call (the raw routers
  // would have silently done exactly that).
  const Outcome b = ex.call({1, 1});
  ASSERT_TRUE(b.connected());
  EXPECT_NE(stale, b.id);
  EXPECT_EQ(ex.hangup(stale), RejectReason::kStaleHandle);
  EXPECT_EQ(ex.active_calls(), 1u);
  EXPECT_FALSE(ex.input_idle(1));
  EXPECT_EQ(ex.hangup(b.id), RejectReason::kNone);
  EXPECT_EQ(ex.stats().handle_errors, 1u);
}

TEST(Exchange, ForeignHandleRejected) {
  const auto net = networks::build_crossbar(4);
  Exchange a(net, {});
  Exchange b(net, {});
  const Outcome oa = a.call({0, 0});
  ASSERT_TRUE(oa.connected());
  EXPECT_EQ(b.hangup(oa.id), RejectReason::kForeignHandle);
  EXPECT_EQ(b.stats().handle_errors, 1u);
  EXPECT_EQ(a.stats().handle_errors, 0u);
  EXPECT_EQ(a.active_calls(), 1u);  // untouched
  EXPECT_TRUE(b.path_of(oa.id).empty());
  EXPECT_EQ(a.hangup(oa.id), RejectReason::kNone);
}

TEST(Exchange, BadSessionIsTypedError) {
  const auto net = networks::build_crossbar(4);
  Exchange ex(net, {});
  const Outcome o = ex.call({0, 0}, 5);
  EXPECT_EQ(o.reject, RejectReason::kBadSession);
  EXPECT_FALSE(o.id.valid());
  EXPECT_EQ(ex.active_calls(), 0u);
  // Misuse is visible in the books, not silently dropped.
  EXPECT_EQ(ex.stats().handle_errors, 1u);
}

// Exchange over a 1-worker ConcurrentRouter must be trace-identical to
// Exchange over GreedyRouter on a fixed request trace — outcomes, paths,
// and the full ExchangeStats block.
TEST(Exchange, EngineEquivalenceThroughFacade) {
  const auto net = networks::build_cantor({5, 0});
  Exchange greedy(net, {});
  Exchange concurrent(net, concurrent_cfg(1));
  const auto n = static_cast<std::uint32_t>(net.inputs.size());

  util::Xoshiro256 rng(util::derive_seed(31, 7));
  std::vector<CallId> live_g, live_c;
  for (int op = 0; op < 4000; ++op) {
    if (!live_g.empty() && (rng() & 3u) == 0) {
      const auto idx = rng() % live_g.size();
      EXPECT_EQ(greedy.hangup(live_g[idx]), RejectReason::kNone);
      EXPECT_EQ(concurrent.hangup(live_c[idx]), RejectReason::kNone);
      live_g[idx] = live_g.back();
      live_g.pop_back();
      live_c[idx] = live_c.back();
      live_c.pop_back();
    } else {
      const auto in = static_cast<std::uint32_t>(rng() % n);
      const auto out = static_cast<std::uint32_t>(rng() % n);
      const Outcome og = greedy.call({in, out});
      const Outcome oc = concurrent.call({in, out});
      ASSERT_EQ(og.reject, oc.reject) << "op " << op;
      ASSERT_EQ(og.path_length, oc.path_length) << "op " << op;
      if (og.connected()) {
        EXPECT_EQ(greedy.path_of(og.id), concurrent.path_of(oc.id));
        live_g.push_back(og.id);
        live_c.push_back(oc.id);
      }
    }
  }
  const ExchangeStats a = greedy.stats();
  const ExchangeStats b = concurrent.stats();
  EXPECT_EQ(a.router.connect_calls, b.router.connect_calls);
  EXPECT_EQ(a.router.accepted, b.router.accepted);
  EXPECT_EQ(a.router.rejected_terminal, b.router.rejected_terminal);
  EXPECT_EQ(a.router.rejected_no_path, b.router.rejected_no_path);
  EXPECT_EQ(a.router.rejected_contention, b.router.rejected_contention);
  EXPECT_EQ(a.router.vertices_visited, b.router.vertices_visited);
  EXPECT_EQ(a.router.path_vertices, b.router.path_vertices);
  EXPECT_EQ(a.router.disconnects, b.router.disconnects);
  EXPECT_EQ(a.hangups, b.hangups);
  EXPECT_EQ(a.handle_errors, 0u);
  EXPECT_EQ(b.handle_errors, 0u);
  EXPECT_EQ(greedy.busy_vertices(), concurrent.busy_vertices());
}

// Batched plane: the same trace submitted through batched admission
// (unbounded window, 1 session) produces the same engine books as the
// immediate plane.
TEST(Exchange, BatchedUnboundedMatchesImmediate) {
  const auto net = networks::build_clos({2, 3, 4});
  const auto n = static_cast<std::uint32_t>(net.inputs.size());
  Exchange immediate(net, {});
  Exchange batched(net, {});
  std::vector<Ticket> tickets;
  util::Xoshiro256 rng(5);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> reqs;
  for (int i = 0; i < 64; ++i)
    reqs.emplace_back(static_cast<std::uint32_t>(rng() % n),
                      static_cast<std::uint32_t>(rng() % n));
  for (const auto& [in, out] : reqs) immediate.call({in, out});
  for (const auto& [in, out] : reqs) tickets.push_back(batched.submit({in, out}));
  EXPECT_EQ(batched.pending(), reqs.size());
  EXPECT_EQ(batched.drain(), reqs.size());
  EXPECT_EQ(batched.pending(), 0u);
  std::size_t polled = 0;
  for (const Ticket t : tickets) {
    const auto o = batched.poll(t);
    ASSERT_TRUE(o.has_value());
    ++polled;
    EXPECT_FALSE(batched.poll(t).has_value());  // taken exactly once
  }
  EXPECT_EQ(polled, reqs.size());
  const ExchangeStats a = immediate.stats();
  const ExchangeStats b = batched.stats();
  EXPECT_EQ(a.router.accepted, b.router.accepted);
  EXPECT_EQ(a.router.rejected_terminal, b.router.rejected_terminal);
  EXPECT_EQ(a.router.rejected_no_path, b.router.rejected_no_path);
  EXPECT_EQ(b.submitted, reqs.size());
  EXPECT_EQ(b.admitted, reqs.size());
  EXPECT_EQ(b.completed, reqs.size());
  EXPECT_EQ(b.epochs, 1u);
  EXPECT_EQ(b.deferred, 0u);
  EXPECT_EQ(b.refused, 0u);
}

TEST(Exchange, FixedWindowDefersBeyondTheWindow) {
  const auto net = networks::build_crossbar(16);
  ExchangeConfig cfg;
  cfg.admission = std::make_unique<FixedWindowAdmission>(4);
  Exchange ex(net, std::move(cfg));
  std::vector<Ticket> tickets;
  for (std::uint32_t i = 0; i < 10; ++i)
    tickets.push_back(ex.submit({i, i}));
  EXPECT_EQ(ex.drain(), 4u);  // epoch 1: 4 admitted, 6 deferred
  EXPECT_EQ(ex.pending(), 6u);
  EXPECT_EQ(ex.drain(), 4u);  // epoch 2: 4 admitted, 2 deferred again
  EXPECT_EQ(ex.drain(), 2u);  // epoch 3: the stragglers
  EXPECT_EQ(ex.pending(), 0u);
  const ExchangeStats st = ex.stats();
  EXPECT_EQ(st.epochs, 3u);
  EXPECT_EQ(st.admitted, 10u);
  EXPECT_EQ(st.deferred, 6u + 2u);  // request-epochs spent waiting
  EXPECT_EQ(st.queue_high_water, 10u);
  // Deferral counts are surfaced in the outcomes.
  EXPECT_EQ(ex.poll(tickets[0])->deferrals, 0u);
  EXPECT_EQ(ex.poll(tickets[5])->deferrals, 1u);
  EXPECT_EQ(ex.poll(tickets[9])->deferrals, 2u);
}

TEST(Exchange, OverloadRefusesAtTheQueueCap) {
  const auto net = networks::build_crossbar(16);
  ExchangeConfig cfg;
  cfg.backend = Backend::kConcurrent;
  cfg.sessions = 2;
  cfg.admission = std::make_unique<FixedWindowAdmission>(2, /*max_queue=*/4);
  Exchange ex(net, std::move(cfg));
  std::vector<Ticket> tickets;
  for (std::uint32_t i = 0; i < 7; ++i)
    tickets.push_back(ex.submit({i, i, 0, /*tag=*/i}));
  // Submissions 5..7 found the queue at its cap of 4: refused outright,
  // outcome immediately pollable.
  for (std::size_t i = 4; i < 7; ++i) {
    const auto o = ex.poll(tickets[i]);
    ASSERT_TRUE(o.has_value());
    EXPECT_EQ(o->reject, RejectReason::kRefused);
    EXPECT_FALSE(o->id.valid());
    EXPECT_EQ(o->tag, i);
    EXPECT_STREQ(to_string(o->reject), "refused_overload");
  }
  EXPECT_EQ(ex.drain_all(), 4u);
  const ExchangeStats st = ex.stats();
  EXPECT_EQ(st.submitted, 7u);
  EXPECT_EQ(st.refused, 3u);
  EXPECT_EQ(st.admitted, 4u);
  EXPECT_EQ(st.completed, 7u);  // 4 served + 3 refusals delivered
  EXPECT_EQ(st.epochs, 2u);
  EXPECT_EQ(st.deferred, 2u);  // the 2 that waited out epoch 1
  EXPECT_EQ(st.queue_high_water, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto o = ex.poll(tickets[i]);
    ASSERT_TRUE(o.has_value());
    EXPECT_TRUE(o->connected());
  }
}

TEST(Exchange, PriorityClassesAdmittedFirst) {
  const auto net = networks::build_crossbar(16);
  ExchangeConfig cfg;
  cfg.admission = std::make_unique<FixedWindowAdmission>(2);
  Exchange ex(net, std::move(cfg));
  const Ticket t0 = ex.submit({0, 0, /*priority=*/0});
  const Ticket t1 = ex.submit({1, 1, /*priority=*/5});
  const Ticket t2 = ex.submit({2, 2, /*priority=*/1});
  const Ticket t3 = ex.submit({3, 3, /*priority=*/5});
  EXPECT_EQ(ex.drain(), 2u);
  // The two priority-5 requests went first (stable FIFO among equals).
  EXPECT_TRUE(ex.poll(t1).has_value());
  EXPECT_TRUE(ex.poll(t3).has_value());
  EXPECT_FALSE(ex.poll(t0).has_value());
  EXPECT_FALSE(ex.poll(t2).has_value());
  EXPECT_EQ(ex.drain(), 2u);
  ASSERT_TRUE(ex.poll(t2).has_value());
  ASSERT_TRUE(ex.poll(t0).has_value());
}

TEST(Exchange, ZeroWindowPolicyDoesNotSpin) {
  const auto net = networks::build_crossbar(4);
  ExchangeConfig cfg;
  cfg.admission = std::make_unique<FixedWindowAdmission>(0);
  Exchange ex(net, std::move(cfg));
  ex.submit({0, 0});
  EXPECT_EQ(ex.drain(), 0u);
  EXPECT_EQ(ex.drain_all(), 0u);  // gives up instead of spinning
  EXPECT_EQ(ex.pending(), 1u);
}

TEST(Exchange, AsyncCompletionCallbacksAcrossSessions) {
  const auto net = networks::build_cantor({5, 0});
  Exchange ex(net, concurrent_cfg(4));
  const auto n = static_cast<std::uint32_t>(net.inputs.size());
  std::mutex mu;
  std::vector<Outcome> done;
  for (std::uint32_t i = 0; i < 64; ++i) {
    ex.submit({i % n, (i * 7 + 3) % n, 0, /*tag=*/i}, [&](const Outcome& o) {
      std::lock_guard<std::mutex> lk(mu);
      done.push_back(o);
    });
  }
  EXPECT_EQ(ex.drain(), 64u);
  ASSERT_EQ(done.size(), 64u);
  std::size_t connected = 0;
  bool multi_session = false;
  for (const Outcome& o : done) {
    if (o.session != done.front().session) multi_session = true;
    if (o.connected()) {
      ++connected;
      EXPECT_EQ(ex.hangup(o.id), RejectReason::kNone);
    }
  }
  EXPECT_TRUE(multi_session);  // the batch really fanned out
  EXPECT_GT(connected, 0u);
  EXPECT_EQ(ex.busy_vertices(), 0u);
  EXPECT_EQ(ex.stats().completed, 64u);
}

TEST(ConflictAdaptiveAdmission, AimdWindowTracksConflictRate) {
  ConflictAdaptiveAdmission policy(64, 8, 256, 0.10, 0.02);
  EpochFeedback fb;
  fb.queued = 10'000;
  // First epoch: no feedback yet, initial window.
  EXPECT_EQ(policy.epoch_window(fb), 64u);
  // Clean epoch (no conflicts): additive growth.
  fb.admitted_last = 64;
  fb.claim_conflicts_last = 0;
  EXPECT_EQ(policy.epoch_window(fb), 80u);
  // Contended epoch (25% conflict rate): halve.
  fb.admitted_last = 80;
  fb.claim_conflicts_last = 20;
  EXPECT_EQ(policy.epoch_window(fb), 40u);
  // A retry-budget rejection always halves, whatever the rate.
  fb.admitted_last = 40;
  fb.claim_conflicts_last = 0;
  fb.rejected_contention_last = 1;
  EXPECT_EQ(policy.epoch_window(fb), 20u);
  // Bounds hold.
  fb.rejected_contention_last = 100;
  for (int i = 0; i < 10; ++i) (void)policy.epoch_window(fb);
  EXPECT_EQ(policy.current_window(), 8u);
  fb.rejected_contention_last = 0;
  fb.claim_conflicts_last = 0;
  fb.admitted_last = 8;
  for (int i = 0; i < 40; ++i) (void)policy.epoch_window(fb);
  EXPECT_EQ(policy.current_window(), 256u);
}

TEST(ExchangeStats, MergeAndDelta) {
  ExchangeStats a, b;
  a.router.accepted = 5;
  a.submitted = 10;
  a.deferred = 2;
  a.queue_high_water = 7;
  b.router.accepted = 3;
  b.submitted = 4;
  b.refused = 1;
  b.queue_high_water = 9;
  ExchangeStats sum = a;
  sum += b;
  EXPECT_EQ(sum.router.accepted, 8u);
  EXPECT_EQ(sum.submitted, 14u);
  EXPECT_EQ(sum.refused, 1u);
  EXPECT_EQ(sum.queue_high_water, 9u);  // high-water merges by max
  sum -= a;
  EXPECT_EQ(sum.router.accepted, 3u);
  EXPECT_EQ(sum.submitted, 4u);
}

// Churn stress (the TSan job runs this file): each thread drives its own
// session through the facade, deliberately misusing handles as it goes —
// stale double-hangups, null handles, handles from a different Exchange.
// Every misuse must come back as a typed error and busy state must balance
// exactly at the end.
TEST(Exchange, ConcurrentChurnWithHandleMisuseStaysSound) {
  const auto net = networks::build_cantor({5, 0});
  constexpr unsigned kSessions = 4;
  Exchange ex(net, concurrent_cfg(kSessions));
  Exchange other(net, {});
  const Outcome foreign = other.call({0, 0});
  ASSERT_TRUE(foreign.connected());
  const auto n = static_cast<std::uint32_t>(net.inputs.size());

  std::atomic<std::uint64_t> expected_errors{0};
  std::vector<std::vector<Outcome>> live(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (unsigned s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      util::Xoshiro256 rng(util::derive_seed(97, s));
      auto& mine = live[s];
      CallId retired{};  // a handle this thread already hung up
      std::uint64_t errors = 0;
      for (int op = 0; op < 2000; ++op) {
        const auto kind = rng() & 15u;
        if (kind == 0 && retired.valid()) {
          // Double hangup of an already-retired handle.
          if (ex.hangup(retired) == RejectReason::kStaleHandle) ++errors;
        } else if (kind == 1) {
          if (ex.hangup(CallId{}) == RejectReason::kStaleHandle) ++errors;
        } else if (kind == 2) {
          if (ex.hangup(foreign.id) == RejectReason::kForeignHandle) ++errors;
        } else if (kind < 6 && !mine.empty()) {
          const auto idx = rng() % mine.size();
          EXPECT_EQ(ex.hangup(mine[idx].id), RejectReason::kNone);
          retired = mine[idx].id;
          mine[idx] = mine.back();
          mine.pop_back();
        } else {
          const auto in = static_cast<std::uint32_t>(rng() % n);
          const auto out = static_cast<std::uint32_t>(rng() % n);
          const Outcome o = ex.call({in, out}, s);
          if (o.connected()) mine.push_back(o);
        }
      }
      expected_errors.fetch_add(errors, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();

  // Quiescent invariants: the facade's books balance and misuse never
  // leaked into busy state.
  std::size_t live_calls = 0, live_path_vertices = 0;
  for (const auto& session_calls : live) {
    live_calls += session_calls.size();
    for (const Outcome& o : session_calls) live_path_vertices += o.path_length;
  }
  EXPECT_EQ(ex.active_calls(), live_calls);
  EXPECT_EQ(ex.busy_vertices(), live_path_vertices);
  const ExchangeStats st = ex.stats();
  EXPECT_EQ(st.handle_errors, expected_errors.load());
  EXPECT_EQ(st.router.accepted, st.hangups + live_calls);
  // Full drain releases everything.
  for (const auto& session_calls : live)
    for (const Outcome& o : session_calls)
      EXPECT_EQ(ex.hangup(o.id), RejectReason::kNone);
  EXPECT_EQ(ex.active_calls(), 0u);
  EXPECT_EQ(ex.busy_vertices(), 0u);
  EXPECT_EQ(other.hangup(foreign.id), RejectReason::kNone);
}

}  // namespace
}  // namespace ftcs::svc
