// Round-trip and cross-module consistency checks: persisted networks must
// behave identically to freshly built ones under faults and routing.
#include <gtest/gtest.h>

#include <sstream>

#include "fault/fault_instance.hpp"
#include "ftcs/ft_network.hpp"
#include "ftcs/majority_access.hpp"
#include "ftcs/verify.hpp"
#include "graph/io.hpp"
#include "networks/cantor.hpp"
#include "networks/multibutterfly.hpp"

namespace ftcs {
namespace {

TEST(RoundTrip, FtNetworkSurvivesSerialization) {
  const auto ft = core::build_ft_network(core::FtParams::sim(2, 4, 6, 1, 31));
  std::stringstream ss;
  graph::write_network(ss, ft.net);
  const auto back = graph::read_network(ss);
  ASSERT_TRUE(graph::structurally_equal(ft.net, back));

  // Fault instances on the restored network match the original exactly
  // (same edge ids, same seed => same failures, same shorts verdict).
  const auto model = fault::FaultModel::symmetric(2e-3);
  fault::FaultInstance a(ft.net, model, 5);
  fault::FaultInstance b(back, model, 5);
  ASSERT_EQ(a.failures().size(), b.failures().size());
  for (std::size_t i = 0; i < a.failures().size(); ++i) {
    EXPECT_EQ(a.failures()[i].edge, b.failures()[i].edge);
    EXPECT_EQ(a.failures()[i].state, b.failures()[i].state);
  }
  EXPECT_EQ(a.terminals_shorted(), b.terminals_shorted());

  // Majority access agrees (output-targeted generic check works on both).
  const auto ra = core::check_majority_access(ft.net, a.faulty_non_terminal_mask());
  const auto rb = core::check_majority_access(back, b.faulty_non_terminal_mask());
  EXPECT_EQ(ra.majority, rb.majority);
  EXPECT_EQ(ra.min_access, rb.min_access);
}

TEST(RoundTrip, ChurnBehavesIdenticallyAfterRestore) {
  const auto net = networks::build_cantor({3, 0});
  std::stringstream ss;
  graph::write_network(ss, net);
  const auto back = graph::read_network(ss);
  const auto a = core::nonblocking_churn(net, 600, 9);
  const auto b = core::nonblocking_churn(back, 600, 9);
  EXPECT_EQ(a.connects, b.connects);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.max_concurrent, b.max_concurrent);
}

TEST(RoundTrip, MultibutterflyRoutesAfterRestore) {
  const std::uint32_t k = 4;
  const auto net = networks::build_multibutterfly({k, 2, 6});
  std::stringstream ss;
  graph::write_network(ss, net);
  const auto back = graph::read_network(ss);
  for (std::uint32_t in = 0; in < 4; ++in)
    for (std::uint32_t out = 0; out < 4; ++out) {
      const auto pa = networks::multibutterfly_route(net, k, in, out);
      const auto pb = networks::multibutterfly_route(back, k, in, out);
      ASSERT_TRUE(pa.has_value());
      ASSERT_TRUE(pb.has_value());
      EXPECT_EQ(*pa, *pb);
    }
}

TEST(RoundTrip, LargeNetworkTextSizeReasonable) {
  // Format sanity: one line per edge, so bytes scale linearly.
  const auto ft = core::build_ft_network(core::FtParams::sim(2, 4, 6, 1, 1));
  std::stringstream ss;
  graph::write_network(ss, ft.net);
  const auto text = ss.str();
  EXPECT_GT(text.size(), ft.net.g.edge_count() * 3);
  EXPECT_LT(text.size(), ft.net.g.edge_count() * 20);
}

}  // namespace
}  // namespace ftcs
