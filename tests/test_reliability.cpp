#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "reliability/amplifier.hpp"
#include "reliability/directed_grid.hpp"
#include "reliability/hammock.hpp"
#include "reliability/reliability_dp.hpp"
#include "reliability/substitution.hpp"
#include "util/prng.hpp"

namespace ftcs::reliability {
namespace {

TEST(DirectedGrid, Fig4Structure) {
  // The paper's Fig. 4: a (4, 8)-directed grid, no wrap.
  const GridSpec spec{4, 8, false};
  const auto net = build_directed_grid(spec);
  EXPECT_EQ(net.g.vertex_count(), 32u);
  // 7 column gaps: 4 straight + 3 diagonal each.
  EXPECT_EQ(net.g.edge_count(), 7u * 7u);
  EXPECT_EQ(grid_edge_count(spec), net.g.edge_count());
  EXPECT_EQ(net.validate(), "");
  // Vertex (i, j) -> (i, j+1) and (i+1, j+1) only.
  EXPECT_EQ(net.g.out_degree(spec.vertex(0, 0)), 2u);
  EXPECT_EQ(net.g.out_degree(spec.vertex(3, 0)), 1u);  // no wrap at bottom row
  EXPECT_EQ(net.g.out_degree(spec.vertex(0, 7)), 0u);  // last stage
}

TEST(DirectedGrid, WrapVariantRegular) {
  const GridSpec spec{4, 8, true};
  const auto net = build_directed_grid(spec);
  EXPECT_EQ(net.g.edge_count(), 7u * 8u);
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(net.g.out_degree(spec.vertex(i, 0)), 2u);
}

TEST(DirectedGrid, OneNetworkTerminals) {
  const GridSpec spec{3, 4, true};
  const auto net = build_grid_one_network(spec);
  EXPECT_EQ(net.inputs.size(), 1u);
  EXPECT_EQ(net.outputs.size(), 1u);
  EXPECT_EQ(net.g.out_degree(net.inputs[0]), 3u);
  EXPECT_EQ(net.g.in_degree(net.outputs[0]), 3u);
  EXPECT_EQ(graph::network_depth(net), 1u + (spec.stages - 1) + 1u);
}

TEST(SpNetwork, LeafAlgebra) {
  const auto leaf = SpNetwork::leaf();
  EXPECT_DOUBLE_EQ(leaf.connection_probability(0.3), 0.3);
  EXPECT_EQ(leaf.switch_count(), 1u);
  EXPECT_EQ(leaf.depth(), 1u);
}

TEST(SpNetwork, ChainAndBundleFormulas) {
  const auto chain = SpNetwork::chain(3);
  EXPECT_NEAR(chain.connection_probability(0.5), 0.125, 1e-12);
  EXPECT_EQ(chain.switch_count(), 3u);
  EXPECT_EQ(chain.depth(), 3u);
  const auto bundle = SpNetwork::bundle(3);
  EXPECT_NEAR(bundle.connection_probability(0.5), 1 - 0.125, 1e-12);
  EXPECT_EQ(bundle.depth(), 1u);
}

TEST(SpNetwork, LadderMatchesClosedForm) {
  const std::size_t w = 4, s = 5;
  const auto ladder = SpNetwork::ladder(w, s);
  const double p = 0.3;
  const double bundle = 1 - std::pow(1 - p, static_cast<double>(w));
  EXPECT_NEAR(ladder.connection_probability(p),
              std::pow(bundle, static_cast<double>(s)), 1e-12);
  EXPECT_EQ(ladder.switch_count(), w * s);
  EXPECT_EQ(ladder.depth(), s);
}

TEST(SpNetwork, FailureProbabilityDirections) {
  const auto ladder = SpNetwork::ladder(4, 4);
  const auto m = fault::FaultModel::symmetric(0.01);
  // Shorting requires every stage shorted: tiny. Open failure requires some
  // bundle all-open: tiny. Both far below the raw eps.
  EXPECT_LT(ladder.short_probability(m), 1e-5);
  EXPECT_LT(ladder.open_failure_probability(m), 1e-5);
}

TEST(SpNetwork, MaterializationCounts) {
  const auto ladder = SpNetwork::ladder(3, 4);
  const auto net = ladder.to_network();
  EXPECT_EQ(net.g.edge_count(), 12u);
  EXPECT_EQ(net.inputs.size(), 1u);
  EXPECT_EQ(net.outputs.size(), 1u);
  EXPECT_EQ(graph::network_depth(net), 4u);
  EXPECT_EQ(net.validate(), "");
}

TEST(SpNetwork, MaterializationConnectivity) {
  const auto net = SpNetwork::series({SpNetwork::bundle(2), SpNetwork::chain(2)})
                       .to_network();
  const graph::VertexId src[1] = {net.inputs[0]};
  const auto dist = graph::bfs_directed(net.g, src);
  EXPECT_NE(dist[net.outputs[0]], graph::kUnreachable);
}

TEST(GridConduction, ExactMatchesClosedFormSingleRow) {
  // rows = 1: input -e-> chain of (stages-1) edges -e-> output, all must
  // conduct: p^(stages+1).
  const GridSpec spec{1, 3, false};
  const double p = 0.7;
  EXPECT_NEAR(grid_conduction_exact(spec, p), std::pow(p, 4), 1e-12);
}

TEST(GridConduction, ExactMatchesMonteCarlo) {
  const GridSpec spec{3, 4, true};
  const double p = 0.8;
  const double exact = grid_conduction_exact(spec, p);
  const double mc = grid_conduction_monte_carlo(spec, p, 200000, 42);
  EXPECT_NEAR(mc, exact, 0.005);
}

TEST(GridConduction, NoWrapMatchesMonteCarlo) {
  const GridSpec spec{4, 3, false};
  const double p = 0.6;
  EXPECT_NEAR(grid_conduction_monte_carlo(spec, p, 200000, 43),
              grid_conduction_exact(spec, p), 0.006);
}

TEST(GridConduction, PerfectAndZeroEdges) {
  const GridSpec spec{4, 5, true};
  EXPECT_NEAR(grid_conduction_exact(spec, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(grid_conduction_exact(spec, 0.0), 0.0, 1e-12);
}

TEST(GridConduction, MonotoneInP) {
  const GridSpec spec{3, 3, true};
  double prev = 0;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double c = grid_conduction_exact(spec, p);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(GridConduction, ExactRejectsHugeRows) {
  EXPECT_THROW((void)grid_conduction_exact({30, 4, false}, 0.5),
               std::invalid_argument);
}

TEST(ShortProbability, MatchesAnalyticOnChain) {
  // 1-network: input -> a -> output (2 switches in series). Short iff both
  // closed: eps^2.
  graph::NetworkBuilder nb;
  nb.g.add_vertices(3);
  nb.g.add_edge(0, 1);
  nb.g.add_edge(1, 2);
  nb.inputs = {0};
  nb.outputs = {2};
  const double eps = 0.1;
  const graph::Network net = nb.finalize();
  const double p = short_probability_monte_carlo(
      net, fault::FaultModel::symmetric(eps), 300000, 7);
  EXPECT_NEAR(p, eps * eps, 0.002);
}

TEST(ShortProbability, UndirectedContraction) {
  // Edges 0->1 and 2->1 (converging): closed failures still short 0 and 2
  // because contraction ignores direction.
  graph::NetworkBuilder nb;
  nb.g.add_vertices(3);
  nb.g.add_edge(0, 1);
  nb.g.add_edge(2, 1);
  nb.inputs = {0};
  nb.outputs = {2};
  const double eps = 0.2;
  const graph::Network net = nb.finalize();
  const double p = short_probability_monte_carlo(
      net, fault::FaultModel::symmetric(eps), 200000, 8);
  EXPECT_NEAR(p, eps * eps, 0.004);
}

TEST(OneNetworkFailure, GridProbabilitiesSmall) {
  const GridSpec spec{8, 8, true};
  const auto f = grid_one_network_failure(spec, fault::FaultModel::symmetric(0.05),
                                          20000, 3);
  // Open failure needs a cut of the 8-row grid: < 1e-4 at eps=0.05; short
  // needs a closed path of length >= 9.
  EXPECT_LT(f.p_fail_open, 1e-3);
  EXPECT_LT(f.p_short, 1e-3);
}

TEST(SpNetwork, SuperSwitchSampleMatchesAlgebra) {
  // Sampled super-switch failure frequencies must converge to the exact
  // SP-algebra probabilities (the §3 equivalence in distribution).
  const auto ladder = SpNetwork::ladder(2, 2);
  const auto m = fault::FaultModel::symmetric(0.15);
  util::Xoshiro256 rng(5);
  std::size_t opens = 0, shorts = 0;
  const std::size_t trials = 200000;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto s = ladder.sample_super_switch(m, rng);
    if (!s.conducts_when_on) ++opens;
    if (s.shorts_when_off) ++shorts;
  }
  EXPECT_NEAR(static_cast<double>(opens) / trials,
              ladder.open_failure_probability(m), 0.003);
  EXPECT_NEAR(static_cast<double>(shorts) / trials, ladder.short_probability(m),
              0.003);
}

TEST(SpNetwork, SuperSwitchSingleLeafStates) {
  const auto leaf = SpNetwork::leaf();
  util::Xoshiro256 rng(6);
  const fault::FaultModel m{0.3, 0.3};
  std::size_t normal = 0, open = 0, closed = 0;
  for (int i = 0; i < 30000; ++i) {
    switch (leaf.sample_super_switch(m, rng).as_state()) {
      case fault::SwitchState::kNormal: ++normal; break;
      case fault::SwitchState::kOpenFail: ++open; break;
      case fault::SwitchState::kClosedFail: ++closed; break;
    }
  }
  EXPECT_NEAR(open / 30000.0, 0.3, 0.01);
  EXPECT_NEAR(closed / 30000.0, 0.3, 0.01);
  EXPECT_NEAR(normal / 30000.0, 0.4, 0.01);
}

TEST(Amplifier, MeetsTargets) {
  const auto d = design_amplifier(0.05, 1e-6);
  EXPECT_TRUE(d.meets(1e-6));
  EXPECT_LT(d.p_short, 1e-6);
  EXPECT_LT(d.p_fail_open, 1e-6);
  // SP algebra agrees with the design's stored probabilities.
  const auto m = fault::FaultModel::symmetric(0.05);
  EXPECT_NEAR(d.sp.short_probability(m), d.p_short, 1e-12);
  EXPECT_NEAR(d.sp.open_failure_probability(m), d.p_fail_open, 1e-12);
}

TEST(Amplifier, SizeScalesQuadraticallyInLogTarget) {
  // Proposition 1: size = O((log 1/eps')^2). Check the ratio
  // size / (log2 1/eps')^2 stays bounded as eps' shrinks.
  double prev_ratio = 0;
  for (double target : {1e-3, 1e-6, 1e-9, 1e-12}) {
    const auto d = design_amplifier(0.05, target);
    const double log_term = std::log2(1.0 / target);
    const double ratio = static_cast<double>(d.size()) / (log_term * log_term);
    EXPECT_LT(ratio, 2.0);
    EXPECT_GT(ratio, 0.005);
    prev_ratio = ratio;
  }
  (void)prev_ratio;
}

TEST(Amplifier, DepthScalesLinearlyInLogTarget) {
  for (double target : {1e-4, 1e-8}) {
    const auto d = design_amplifier(0.05, target);
    EXPECT_LT(static_cast<double>(d.depth()), 3.0 * std::log2(1.0 / target));
  }
}

TEST(Amplifier, InvalidArguments) {
  EXPECT_THROW(design_amplifier(0.6, 0.01), std::invalid_argument);
  EXPECT_THROW(design_amplifier(0.1, 0.2), std::invalid_argument);
  EXPECT_THROW(design_amplifier(0.0, 0.0), std::invalid_argument);
}

TEST(DeltaScaling, Formula) {
  EXPECT_DOUBLE_EQ(scaled_epsilon_for_delta(0.1, 0.25, 0.5), 0.05);
  EXPECT_THROW((void)scaled_epsilon_for_delta(0.1, 0.5, 0.25),
               std::invalid_argument);
}

TEST(Substitution, AccountingMatchesSection3) {
  graph::NetworkBuilder host_nb;
  host_nb.g.add_vertices(3);
  host_nb.g.add_edge(0, 1);
  host_nb.g.add_edge(1, 2);
  host_nb.inputs = {0};
  host_nb.outputs = {2};
  const auto gadget = design_amplifier(0.05, 1e-4);
  const graph::Network host = host_nb.finalize();
  const auto report = substitute_with_amplifier(host, gadget);
  EXPECT_EQ(report.substituted.g.edge_count(),
            report.gadget_size * report.host_size);
  EXPECT_EQ(report.effective.eps_open, gadget.p_fail_open);
  EXPECT_EQ(report.effective.eps_closed, gadget.p_short);
  EXPECT_EQ(graph::network_depth(report.substituted),
            report.gadget_depth * graph::network_depth(host));
}

}  // namespace
}  // namespace ftcs::reliability
