// TSan churn for the federation's documented threading contract: any number
// of producer threads submit()/poll() mixed intra- and inter-shard traffic
// while an operator thread storms trunk faults/repairs (plus reads) through
// the ops command queue, and ONE serving thread owns everything else —
// drain(), ControlPlane::pump(), hangup(). Run under -fsanitize=thread via
// the `tsan` ctest label; the final sweep checks cross-plane consistency at
// quiescence (the exact-zero balance proofs live in test_federation.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "networks/cantor.hpp"
#include "ops/control.hpp"
#include "svc/federation.hpp"
#include "util/prng.hpp"

namespace ftcs::svc {
namespace {

TEST(FederationChurnTsan, SubmittersRaceTrunkFaultsThroughCommandQueue) {
  const auto net = networks::build_cantor({4, 0});
  FederationConfig cfg;
  cfg.backend = Backend::kConcurrent;
  cfg.sessions = 2;
  Federation fed(net, 3, cfg);
  ops::ControlPlane cp(fed);

  constexpr int kProducers = 2;
  constexpr std::uint64_t kPerProducer = 2000;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  constexpr int kCommands = 400;

  std::atomic<std::uint64_t> delivered{0};
  std::mutex mu;
  std::vector<FedCallId> connected;  // callback-filled, serving thread drains

  auto on_done = [&](const FedOutcome& o) {
    if (o.connected()) {
      const std::lock_guard<std::mutex> lk(mu);
      connected.push_back(o.id);
    }
    delivered.fetch_add(1, std::memory_order_release);
  };

  // Producers: thread-safe plane only (submit). Back off when the serving
  // thread falls behind so the queue stays bounded.
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      util::Xoshiro256 rng(util::derive_seed(1992, 100 + p));
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        CallRequest req;
        req.input = static_cast<std::uint32_t>(rng.below(fed.input_count()));
        req.output = static_cast<std::uint32_t>(rng.below(fed.input_count()));
        req.tag = (static_cast<std::uint64_t>(p) << 32) | i;
        fed.submit(req, on_done);
        while (fed.pending() > 512) std::this_thread::yield();
      }
    });
  }

  // Operator: posts trunk faults/repairs and reads from its own thread; the
  // serving thread executes them inside pump() between epochs.
  std::thread oper([&] {
    util::Xoshiro256 rng(util::derive_seed(1992, 7));
    std::vector<ops::CmdTicket> tickets;
    for (int i = 0; i < kCommands; ++i) {
      ops::Command cmd;
      const auto group =
          static_cast<std::uint32_t>(rng.below(fed.trunk_group_count()));
      const auto line = static_cast<std::uint32_t>(
          rng.below(fed.trunk_group(group).capacity()));
      switch (rng.below(4)) {
        case 0:
          cmd.kind = ops::CommandKind::kTrunkFault;
          cmd.arg = group;
          cmd.arg2 = line;
          break;
        case 1:
          cmd.kind = ops::CommandKind::kTrunkRepair;
          cmd.arg = group;
          cmd.arg2 = line;
          break;
        case 2:
          cmd.kind = ops::CommandKind::kTrunks;
          break;
        default:
          cmd.kind = ops::CommandKind::kQuery;
          break;
      }
      tickets.push_back(cp.queue().post(cmd));
      // Poll a stale ticket now and then; acks are take-once.
      if (!tickets.empty() && rng.below(4) == 0) {
        if (const auto ack = cp.queue().try_ack(tickets.front())) {
          EXPECT_EQ(ack->trunks.size(), fed.trunk_group_count());
          tickets.erase(tickets.begin());
        }
      }
      if (i % 16 == 0) std::this_thread::yield();
    }
  });

  // Serving thread (this one): owns drain/pump/hangup.
  util::Xoshiro256 rng(util::derive_seed(1992, 1));
  std::vector<FedCallId> held;
  auto serve_once = [&] {
    fed.drain();
    cp.pump();
    {
      const std::lock_guard<std::mutex> lk(mu);
      held.insert(held.end(), connected.begin(), connected.end());
      connected.clear();
    }
    // Churn: hang up about half of what we hold. A call the trunk-fault
    // storm already reaped acks kFaulted/kStaleHandle — typed, harmless.
    for (std::size_t k = 0; k < held.size();) {
      if (rng.below(2) == 0) {
        fed.hangup(held[k]);
        held[k] = held.back();
        held.pop_back();
      } else {
        ++k;
      }
    }
  };
  while (delivered.load(std::memory_order_acquire) < kTotal ||
         fed.pending() > 0)
    serve_once();
  for (std::thread& t : producers) t.join();
  oper.join();
  fed.drain_all();
  cp.pump();  // flush any commands posted after the last pump
  {
    const std::lock_guard<std::mutex> lk(mu);
    held.insert(held.end(), connected.begin(), connected.end());
    connected.clear();
  }
  for (const FedCallId id : held) fed.hangup(id);

  // Quiescent consistency sweep. Trunk-fault re-admissions we never saw a
  // handle for may legitimately still be up; every book must agree on them.
  EXPECT_EQ(delivered.load(), kTotal);
  const FederationStats st = fed.stats();
  std::size_t occupancy = 0;
  for (std::uint32_t g = 0; g < fed.trunk_group_count(); ++g)
    occupancy += fed.trunk_group(g).occupancy();
  const std::size_t live_inter = fed.active_inter_calls();
  EXPECT_EQ(occupancy, live_inter);
  EXPECT_EQ(st.trunks.claims - st.trunks.releases, live_inter);
  // Only unseen re-admitted inter calls remain: two member halves each.
  EXPECT_EQ(fed.active_calls(), 2 * live_inter);
  if (live_inter == 0) {
    EXPECT_EQ(fed.busy_vertices(), 0u);
  }
  // Every original submission was booked exactly once as intra or inter;
  // each trunk-fault re-admission books one extra inter call AND exactly
  // one reroute outcome, so the difference recovers the offered load.
  EXPECT_EQ(st.inter_calls + st.intra_calls -
                st.reroute_succeeded - st.reroute_failed,
            kTotal);
  // Trunk fault/repair counters move only on state change, so their
  // difference is the number of lines still out of the pool.
  std::uint64_t down = 0;
  for (const TrunkGauge& g : fed.trunk_gauges()) down += g.capacity - g.usable;
  EXPECT_EQ(st.trunks.faults - st.trunks.repairs, down);
}

}  // namespace
}  // namespace ftcs::svc
