#include <gtest/gtest.h>

#include "fault/fault_instance.hpp"
#include "fault/fault_model.hpp"
#include "fault/repair.hpp"
#include "networks/crossbar.hpp"

namespace ftcs::fault {
namespace {

TEST(FaultModel, Validation) {
  EXPECT_NO_THROW(FaultModel::symmetric(0.1).validate());
  EXPECT_THROW((FaultModel{-0.1, 0.0}.validate()), std::invalid_argument);
  EXPECT_THROW((FaultModel{0.6, 0.6}.validate()), std::invalid_argument);
  EXPECT_DOUBLE_EQ(FaultModel::symmetric(0.2).total(), 0.4);
  EXPECT_DOUBLE_EQ(FaultModel::none().total(), 0.0);
}

TEST(Sampling, DeterministicInSeed) {
  const auto m = FaultModel::symmetric(0.05);
  const auto a = sample_failures(m, 10000, 7);
  const auto b = sample_failures(m, 10000, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].edge, b[i].edge);
    EXPECT_EQ(a[i].state, b[i].state);
  }
  const auto c = sample_failures(m, 10000, 8);
  EXPECT_NE(a.size(), c.size());  // overwhelmingly likely
}

TEST(Sampling, RateMatchesModel) {
  const auto m = FaultModel{0.02, 0.01};
  std::size_t opens = 0, closes = 0;
  const std::size_t edges = 20000, reps = 25;
  for (std::size_t r = 0; r < reps; ++r) {
    for (const auto& f : sample_failures(m, edges, 100 + r)) {
      if (f.state == SwitchState::kOpenFail) ++opens;
      else ++closes;
    }
  }
  const double total = static_cast<double>(edges) * reps;
  EXPECT_NEAR(opens / total, 0.02, 0.002);
  EXPECT_NEAR(closes / total, 0.01, 0.0015);
}

TEST(Sampling, SortedAndInRange) {
  const auto fails = sample_failures(FaultModel::symmetric(0.1), 5000, 3);
  for (std::size_t i = 0; i < fails.size(); ++i) {
    EXPECT_LT(fails[i].edge, 5000u);
    if (i) {
      EXPECT_LT(fails[i - 1].edge, fails[i].edge);
    }
  }
}

TEST(Sampling, ZeroRateEmpty) {
  EXPECT_TRUE(sample_failures(FaultModel::none(), 1000, 1).empty());
}

TEST(Sampling, DenseStatesAgreeWithSparse) {
  const auto m = FaultModel::symmetric(0.05);
  const auto sparse = sample_failures(m, 2000, 11);
  const auto dense = sample_states(m, 2000, 11);
  std::size_t failed = 0;
  for (std::size_t e = 0; e < dense.size(); ++e)
    if (dense[e] != SwitchState::kNormal) ++failed;
  EXPECT_EQ(failed, sparse.size());
  for (const auto& f : sparse) EXPECT_EQ(dense[f.edge], f.state);
}

graph::Network chain_net() {
  // 0 -> 1 -> 2 -> 3 with terminals 0 (input) and 3 (output).
  graph::NetworkBuilder nb;
  nb.g.add_vertices(4);
  nb.g.add_edge(0, 1);
  nb.g.add_edge(1, 2);
  nb.g.add_edge(2, 3);
  nb.inputs = {0};
  nb.outputs = {3};
  return nb.finalize();
}

TEST(FaultInstance, ExplicitFailuresIndexing) {
  const auto net = chain_net();
  FaultInstance inst(net, {{1, SwitchState::kOpenFail}});
  EXPECT_EQ(inst.state(0), SwitchState::kNormal);
  EXPECT_EQ(inst.state(1), SwitchState::kOpenFail);
  EXPECT_EQ(inst.open_count(), 1u);
  EXPECT_EQ(inst.closed_count(), 0u);
  // Edge 1 = (1, 2): both endpoints faulty.
  EXPECT_TRUE(inst.is_faulty(1));
  EXPECT_TRUE(inst.is_faulty(2));
  EXPECT_FALSE(inst.is_faulty(0));
  EXPECT_EQ(inst.faulty_vertex_count(), 2u);
}

TEST(FaultInstance, ClosedFailureContracts) {
  const auto net = chain_net();
  FaultInstance inst(net, {{0, SwitchState::kClosedFail},
                           {1, SwitchState::kClosedFail},
                           {2, SwitchState::kClosedFail}});
  EXPECT_TRUE(inst.terminals_shorted());
  const auto pair = inst.shorted_terminal_pair();
  ASSERT_TRUE(pair.has_value());
}

TEST(FaultInstance, PartialClosedChainNoShort) {
  const auto net = chain_net();
  FaultInstance inst(net, {{0, SwitchState::kClosedFail},
                           {2, SwitchState::kClosedFail}});
  EXPECT_FALSE(inst.terminals_shorted());
}

TEST(FaultInstance, OpenFailuresNeverShort) {
  const auto net = chain_net();
  FaultInstance inst(net, {{0, SwitchState::kOpenFail},
                           {1, SwitchState::kOpenFail},
                           {2, SwitchState::kOpenFail}});
  EXPECT_FALSE(inst.terminals_shorted());
}

TEST(FaultInstance, NoFailures) {
  const auto net = chain_net();
  FaultInstance inst(net, FaultModel::none(), 1);
  EXPECT_EQ(inst.faulty_vertex_count(), 0u);
  EXPECT_FALSE(inst.terminals_shorted());
}

TEST(Repair, DiscardRemovesFaultyVertices) {
  const auto net = chain_net();
  FaultInstance inst(net, {{1, SwitchState::kOpenFail}});
  const auto repaired = repair_by_discard(inst);
  EXPECT_EQ(repaired.discarded_vertices, 2u);
  EXPECT_EQ(repaired.net.g.vertex_count(), 2u);
  EXPECT_EQ(repaired.surviving_inputs, 1u);
  EXPECT_EQ(repaired.surviving_outputs, 1u);
  // Only normal edges survive (none here: both incident edges lost a vertex).
  EXPECT_EQ(repaired.net.g.edge_count(), 0u);
}

TEST(Repair, SurvivingEdgesAreNormal) {
  const auto net = networks::build_crossbar(8);
  const auto model = FaultModel::symmetric(0.02);
  FaultInstance inst(net, model, 99);
  const auto repaired = repair_by_discard(inst);
  // Every surviving edge maps back to a normal edge: verify via state() by
  // reconstructing — all faulty-endpoint edges were dropped by construction.
  EXPECT_LE(repaired.net.g.edge_count(), net.g.edge_count());
  EXPECT_EQ(repaired.net.g.vertex_count() + repaired.discarded_vertices,
            net.g.vertex_count());
}

TEST(Repair, NeighborsVariantDiscardsMore) {
  const auto net = networks::build_crossbar(8);
  FaultInstance inst(net, FaultModel::symmetric(0.02), 7);
  const auto basic = repair_by_discard(inst);
  const auto strict = repair_by_discard_with_neighbors(inst);
  EXPECT_GE(strict.discarded_vertices, basic.discarded_vertices);
  const auto mask = faulty_with_neighbors(inst);
  std::size_t count = 0;
  for (auto f : mask) count += f;
  EXPECT_EQ(count, strict.discarded_vertices);
}

TEST(FaultInstance, NonTerminalMaskClearsTerminals) {
  const auto net = chain_net();
  FaultInstance inst(net, {{0, SwitchState::kOpenFail},
                           {2, SwitchState::kClosedFail}});
  // All four vertices are incident to a failed edge...
  EXPECT_EQ(inst.faulty_vertex_count(), 4u);
  // ...but the paper's mask exempts the terminals 0 and 3.
  const auto mask = inst.faulty_non_terminal_mask();
  EXPECT_EQ(mask[0], 0);
  EXPECT_EQ(mask[1], 1);
  EXPECT_EQ(mask[2], 1);
  EXPECT_EQ(mask[3], 0);
}

TEST(FaultInstance, FailedEdgeMask) {
  const auto net = chain_net();
  FaultInstance inst(net, {{1, SwitchState::kOpenFail}});
  const auto mask = inst.failed_edge_mask();
  EXPECT_EQ(mask[0], 0);
  EXPECT_EQ(mask[1], 1);
  EXPECT_EQ(mask[2], 0);
}

TEST(Repair, CleanInstanceKeepsEverything) {
  const auto net = chain_net();
  FaultInstance inst(net, FaultModel::none(), 5);
  const auto repaired = repair_by_discard(inst);
  EXPECT_EQ(repaired.discarded_vertices, 0u);
  EXPECT_EQ(repaired.net.g.edge_count(), net.g.edge_count());
}

}  // namespace
}  // namespace ftcs::fault
