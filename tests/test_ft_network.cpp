#include <gtest/gtest.h>

#include <cmath>

#include "ftcs/ft_network.hpp"
#include "ftcs/params.hpp"
#include "graph/algorithms.hpp"

namespace ftcs::core {
namespace {

TEST(Params, PaperGamma) {
  // 4^gamma >= 34*nu: nu=1 -> 34 -> gamma=3 (64); nu=2 -> 68 -> 4^4=256?
  // 4^3=64 < 68, so gamma=4. nu=4 -> 136 -> 4^4 = 256 >= 136 -> gamma=4.
  EXPECT_EQ(FtParams::paper(1).gamma(), 3u);
  EXPECT_EQ(FtParams::paper(2).gamma(), 4u);
  EXPECT_EQ(FtParams::paper(4).gamma(), 4u);
  // Paper constraint 4^gamma <= 136 nu holds for these.
  for (std::uint32_t nu : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const auto p = FtParams::paper(nu);
    double power = std::pow(4.0, p.gamma());
    EXPECT_GE(power, 34.0 * nu);
    EXPECT_LE(power, 136.0 * nu);
  }
}

TEST(Params, SimOverridesGamma) {
  const auto p = FtParams::sim(3, 8, 6, 1);
  EXPECT_EQ(p.gamma(), 1u);
  EXPECT_EQ(p.terminal_count(), 64u);
  EXPECT_EQ(p.grid_rows(), 32u);          // 8 * 4^1
  EXPECT_EQ(p.stage_width(), 32u * 64u);  // rows * 4^nu
}

TEST(Params, PredictedCountsPaperFormula) {
  // For the paper profile the edge count is width*(2*nu*degree + 4(nu-1) + 2)
  // = 64*4^(nu+gamma) * (20nu + 4nu - 2) — our exact accounting.
  const auto p = FtParams::paper(2);
  const double width = 64.0 * std::pow(4.0, 2 + p.gamma());
  EXPECT_EQ(p.predicted_edges(),
            static_cast<std::size_t>(width * (2 * 2 * 10 + 4 * 1 + 2)));
}

TEST(FtNetwork, BuildMatchesPrediction) {
  for (std::uint32_t nu : {1u, 2u, 3u}) {
    const auto params = FtParams::sim(nu, 4, 6, 1, 9);
    const auto ft = build_ft_network(params);
    EXPECT_EQ(ft.net.g.edge_count(), params.predicted_edges()) << "nu=" << nu;
    EXPECT_EQ(ft.net.g.vertex_count(), params.predicted_vertices()) << "nu=" << nu;
    EXPECT_EQ(ft.net.inputs.size(), params.terminal_count());
    EXPECT_EQ(ft.net.outputs.size(), params.terminal_count());
    EXPECT_EQ(graph::network_depth(ft.net), params.predicted_depth());
    EXPECT_EQ(ft.net.validate(), "");
    EXPECT_TRUE(graph::is_dag(ft.net.g));
  }
}

TEST(FtNetwork, GridChainsWellFormed) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 2));
  const std::size_t rows = ft.params.grid_rows();
  ASSERT_EQ(ft.grid_columns.size(), 16u);
  for (const auto& chain : ft.grid_columns) {
    ASSERT_EQ(chain.size(), 2u);  // nu columns
    for (const auto& col : chain) EXPECT_EQ(col.size(), rows);
  }
  // Input t attaches to every row of its first column.
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(ft.net.g.out_degree(ft.net.inputs[t]), rows);
  }
  // Mirror side symmetric.
  for (std::size_t t = 0; t < 4; ++t)
    EXPECT_EQ(ft.net.g.in_degree(ft.net.outputs[t]), rows);
}

TEST(FtNetwork, StageMonotonicity) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 3));
  for (graph::EdgeId e = 0; e < ft.net.g.edge_count(); ++e) {
    const auto& ed = ft.net.g.edge(e);
    ASSERT_EQ(ft.net.stage[ed.to], ft.net.stage[ed.from] + 1);
  }
  // Stage range: 0 .. 4nu.
  std::int32_t max_stage = 0;
  for (auto s : ft.net.stage) max_stage = std::max(max_stage, s);
  EXPECT_EQ(max_stage, 8);
}

TEST(FtNetwork, EveryInputReachesEveryOutput) {
  const auto ft = build_ft_network(FtParams::sim(2, 4, 6, 1, 4));
  for (graph::VertexId in : ft.net.inputs) {
    const graph::VertexId src[1] = {in};
    const auto dist = graph::bfs_directed(ft.net.g, src);
    for (graph::VertexId out : ft.net.outputs)
      ASSERT_NE(dist[out], graph::kUnreachable);
  }
}

TEST(FtNetwork, NuOneHasNoGridColumns) {
  // nu = 1: inputs attach directly to the core blocks.
  const auto ft = build_ft_network(FtParams::sim(1, 4, 6, 1, 5));
  EXPECT_EQ(ft.net.inputs.size(), 4u);
  EXPECT_EQ(graph::network_depth(ft.net), 4u);
  for (const auto& chain : ft.grid_columns) EXPECT_EQ(chain.size(), 1u);
}

TEST(FtNetwork, GridVertexDegreesMatchPaper) {
  // Interior grid vertices: out-degree 2 (straight + diagonal), in-degree 2;
  // last-column (core inlet) vertices: in-degree 2 from the grid, out-degree
  // `degree` into the core — the paper's "adjacent to at most twelve edges".
  const auto params = FtParams::sim(3, 4, 6, 1, 6);
  const auto ft = build_ft_network(params);
  const auto& chain = ft.grid_columns[0];
  for (std::size_t c = 0; c + 1 < chain.size(); ++c) {
    for (graph::VertexId v : chain[c]) {
      EXPECT_EQ(ft.net.g.out_degree(v), 2u);
      EXPECT_EQ(ft.net.g.in_degree(v), c == 0 ? 1u : 2u);
    }
  }
  for (graph::VertexId v : chain.back()) {
    EXPECT_EQ(ft.net.g.in_degree(v), 2u);
    EXPECT_EQ(ft.net.g.out_degree(v), params.degree);
    EXPECT_LE(ft.net.g.degree(v), 12u);  // paper's Lemma 3 bound at defaults
  }
}

TEST(FtNetwork, DeterministicInSeed) {
  const auto a = build_ft_network(FtParams::sim(2, 4, 6, 1, 77));
  const auto b = build_ft_network(FtParams::sim(2, 4, 6, 1, 77));
  ASSERT_EQ(a.net.g.edge_count(), b.net.g.edge_count());
  for (graph::EdgeId e = 0; e < a.net.g.edge_count(); ++e) {
    EXPECT_EQ(a.net.g.edge(e).from, b.net.g.edge(e).from);
    EXPECT_EQ(a.net.g.edge(e).to, b.net.g.edge(e).to);
  }
}

TEST(FtNetwork, RejectsNuZero) {
  EXPECT_THROW(build_ft_network(FtParams::sim(0, 4, 6, 1)), std::invalid_argument);
}

}  // namespace
}  // namespace ftcs::core
