// Hitless capacity growth: the GrownNetwork contract (NetworkDelta /
// finalize_grown merge invariants), grow_cantor's doubled topology,
// Exchange::grow's live-call remap on both engines (identity and locality
// finalize), overlay/fault-bookkeeping survival, the TopologyEvent
// dispatch seam, the ops::ControlPlane kGrow ack, and the batched wave
// plane serving the new terminals the epoch after the merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fault/schedule.hpp"
#include "graph/digraph.hpp"
#include "networks/cantor.hpp"
#include "ops/command_queue.hpp"
#include "ops/control.hpp"
#include "svc/exchange.hpp"
#include "util/prng.hpp"

namespace ftcs {
namespace {

/// First edge id from u to v (sentinel: edge_count).
graph::EdgeId edge_between(const graph::CsrGraph& g, graph::VertexId u,
                           graph::VertexId v) {
  const auto eids = g.out_edges(u);
  const auto tgts = g.out_targets(u);
  for (std::size_t i = 0; i < eids.size(); ++i)
    if (tgts[i] == v) return eids[i];
  return static_cast<graph::EdgeId>(g.edge_count());
}

svc::GrowthPlan doubling_plan(const svc::Exchange& ex,
                              const networks::CantorParams& base_params,
                              graph::FinalizeOptions opts = {}) {
  svc::GrowthPlan plan;
  plan.grown = networks::grow_cantor(ex.network(), base_params, opts);
  return plan;
}

// ------------------------------------------------------- merge unit layer

TEST(NetworkDelta, MergeKeepsBasePrefixAndAppendsInEdgeIdOrder) {
  const auto base = networks::build_cantor({2, 0});
  const auto old_v = base.g.vertex_count();
  const auto old_e = base.g.edge_count();

  graph::NetworkDelta d(base);
  const auto a = d.add_vertex(0);
  const auto b = d.add_vertex(1);
  const auto e0 = d.add_edge(base.inputs[0], a);  // base -> new
  const auto e1 = d.add_edge(a, b);               // new  -> new
  const auto e2 = d.add_edge(b, base.outputs[0]); // new  -> base
  const auto e3 = d.add_edge(base.inputs[0], b);  // second append, same tail
  d.add_input(a);
  d.add_output(b);
  d.rename("grown-unit");
  const graph::GrownNetwork g = d.finalize_grown();

  // Identity vmap over old ids; new vertices continue densely.
  ASSERT_EQ(g.vmap.size(), old_v);
  for (graph::VertexId v = 0; v < old_v; ++v) EXPECT_EQ(g.vmap[v], v);
  EXPECT_EQ(g.net.g.vertex_count(), old_v + 2);
  EXPECT_EQ(g.net.g.edge_count(), old_e + 4);
  EXPECT_EQ(g.net.name, "grown-unit");

  // Edge ids are stable for the base and sequential for the delta.
  EXPECT_EQ(e0, old_e + 0);
  EXPECT_EQ(e3, old_e + 3);
  for (graph::EdgeId e = 0; e < old_e; ++e) {
    EXPECT_EQ(g.net.g.edge(e).from, base.g.edge(e).from);
    EXPECT_EQ(g.net.g.edge(e).to, base.g.edge(e).to);
  }
  EXPECT_EQ(g.net.g.edge(e1).from, a);
  EXPECT_EQ(g.net.g.edge(e1).to, b);
  EXPECT_EQ(g.net.g.edge(e2).to, base.outputs[0]);

  // Every base vertex's incidence list keeps its original order as a
  // prefix; appended edges follow in ascending edge-id order.
  for (graph::VertexId v = 0; v < old_v; ++v) {
    const auto now = g.net.g.out_edges(v);
    const auto was = base.g.out_edges(v);
    ASSERT_GE(now.size(), was.size());
    for (std::size_t i = 0; i < was.size(); ++i) EXPECT_EQ(now[i], was[i]);
    for (std::size_t i = was.size(); i + 1 < now.size(); ++i)
      EXPECT_LT(now[i], now[i + 1]);
  }
  const auto in0 = g.net.g.out_edges(base.inputs[0]);
  ASSERT_GE(in0.size(), 2u);
  EXPECT_EQ(in0[in0.size() - 2], e0);
  EXPECT_EQ(in0[in0.size() - 1], e3);

  // Terminal lists are prefix-stable with the new terminals appended.
  ASSERT_EQ(g.net.inputs.size(), base.inputs.size() + 1);
  ASSERT_EQ(g.net.outputs.size(), base.outputs.size() + 1);
  for (std::size_t i = 0; i < base.inputs.size(); ++i)
    EXPECT_EQ(g.net.inputs[i], base.inputs[i]);
  EXPECT_EQ(g.net.inputs.back(), a);
  EXPECT_EQ(g.net.outputs.back(), b);
}

TEST(NetworkDelta, LocalityFinalizeUpholdsTheSameContractThroughVmap) {
  const auto base = networks::build_cantor({2, 0});
  const auto old_e = base.g.edge_count();
  graph::NetworkDelta d(base);
  const auto a = d.add_vertex(0);
  const auto e0 = d.add_edge(base.inputs[1], a);
  const auto e1 = d.add_edge(a, base.outputs[1]);
  d.add_input(a);
  const graph::GrownNetwork g =
      d.finalize_grown({graph::RelabelMode::kLocality});

  // vmap is injective and the stable edge ids connect the vmap images.
  std::vector<bool> seen(g.net.g.vertex_count(), false);
  for (const auto nv : g.vmap) {
    ASSERT_LT(nv, g.net.g.vertex_count());
    EXPECT_FALSE(seen[nv]);
    seen[nv] = true;
  }
  for (graph::EdgeId e = 0; e < old_e; ++e) {
    EXPECT_EQ(g.net.g.edge(e).from, g.vmap[base.g.edge(e).from]);
    EXPECT_EQ(g.net.g.edge(e).to, g.vmap[base.g.edge(e).to]);
  }
  EXPECT_EQ(g.net.g.edge(e0).from, g.vmap[base.g.edge(0).from == 0
                                              ? base.inputs[1]
                                              : base.inputs[1]]);
  EXPECT_EQ(g.net.g.edge(e1).to, g.vmap[base.outputs[1]]);
  // Terminal indices keep their meaning through the relabel.
  for (std::size_t i = 0; i < base.inputs.size(); ++i)
    EXPECT_EQ(g.net.inputs[i], g.vmap[base.inputs[i]]);
}

// --------------------------------------------------- growth equivalence

// The grown network serves exactly the terminal pairs a from-scratch
// double-size Cantor serves: every pair, on an idle exchange, on both
// engines — plus a full simultaneous permutation (the strictly-nonblocking
// load the appended planes must carry).
TEST(GrowthEquivalence, GrownReachesEveryPairAFreshDoubleReaches) {
  for (const auto backend : {svc::Backend::kGreedy, svc::Backend::kConcurrent}) {
    const auto base = networks::build_cantor({3, 0});
    const auto fresh = networks::build_cantor({4, 0});
    svc::ExchangeConfig cfg_g, cfg_f;
    cfg_g.backend = cfg_f.backend = backend;
    svc::Exchange grown_ex(base, std::move(cfg_g));
    ASSERT_TRUE(grown_ex.grow(doubling_plan(grown_ex, {3, 0})).applied);
    svc::Exchange fresh_ex(fresh, std::move(cfg_f));
    ASSERT_EQ(grown_ex.input_count(), fresh_ex.input_count());

    const auto n = static_cast<std::uint32_t>(grown_ex.input_count());
    for (std::uint32_t in = 0; in < n; ++in)
      for (std::uint32_t out = 0; out < n; ++out) {
        const svc::Outcome a = grown_ex.call({in, out, 0, 1});
        const svc::Outcome b = fresh_ex.call({in, out, 0, 1});
        EXPECT_TRUE(a.connected()) << in << "->" << out;
        EXPECT_EQ(a.connected(), b.connected());
        if (a.connected()) grown_ex.hangup(a.id);
        if (b.connected()) fresh_ex.hangup(b.id);
      }

    // Full reversal permutation held simultaneously.
    std::vector<svc::CallId> held;
    for (std::uint32_t i = 0; i < n; ++i) {
      const svc::Outcome o = grown_ex.call({i, n - 1 - i, 0, i + 1});
      ASSERT_TRUE(o.connected()) << "pair " << i;
      held.push_back(o.id);
    }
    for (const auto id : held)
      EXPECT_EQ(grown_ex.hangup(id), svc::RejectReason::kNone);
    EXPECT_EQ(grown_ex.active_calls(), 0u);
    EXPECT_EQ(grown_ex.busy_vertices(), 0u);
  }
}

// ------------------------------------------------------ live-call remap

TEST(ExchangeGrowth, LiveCallsSurviveWithVmapImagePaths) {
  for (const auto relabel :
       {graph::RelabelMode::kNone, graph::RelabelMode::kLocality}) {
    for (const auto backend :
         {svc::Backend::kGreedy, svc::Backend::kConcurrent}) {
      const auto base = networks::build_cantor({3, 0});
      svc::ExchangeConfig cfg;
      cfg.backend = backend;
      svc::Exchange ex(base, std::move(cfg));
      const auto n = static_cast<std::uint32_t>(ex.input_count());

      std::vector<std::pair<svc::CallId, std::vector<graph::VertexId>>> pre;
      for (std::uint32_t i = 0; i < n; ++i) {
        const svc::Outcome o =
            ex.call({i, static_cast<std::uint32_t>((3 * i + 1) % n), 0, i + 1});
        ASSERT_TRUE(o.connected());
        pre.emplace_back(o.id, ex.path_of(o.id));
      }

      graph::GrownNetwork grown =
          networks::grow_cantor(ex.network(), {3, 0}, {relabel});
      const std::vector<graph::VertexId> vmap = grown.vmap;
      svc::GrowthPlan plan;
      plan.grown = std::move(grown);
      const svc::GrowthReport rep = ex.grow(std::move(plan));
      ASSERT_TRUE(rep.applied) << rep.error;
      EXPECT_EQ(rep.calls_remapped, pre.size());
      EXPECT_EQ(rep.calls_killed, 0u);
      EXPECT_EQ(rep.inputs_added, n);
      EXPECT_GT(rep.switches_added, 0u);
      EXPECT_GE(rep.quiesce_seconds, 0.0);

      // Every live path is the EXACT vmap image of its pre-growth path.
      for (const auto& [id, old_path] : pre) {
        const auto now = ex.path_of(id);
        ASSERT_EQ(now.size(), old_path.size());
        for (std::size_t i = 0; i < now.size(); ++i)
          EXPECT_EQ(now[i], vmap[old_path[i]]);
      }
      const svc::ExchangeStats st = ex.stats();
      EXPECT_EQ(st.growths, 1u);
      EXPECT_EQ(st.calls_remapped_by_growth, pre.size());
      EXPECT_EQ(st.calls_killed_by_growth, 0u);

      // Handles stay first-class: hangup drains to all-idle.
      for (const auto& [id, unused] : pre)
        EXPECT_EQ(ex.hangup(id), svc::RejectReason::kNone);
      EXPECT_EQ(ex.active_calls(), 0u);
      EXPECT_EQ(ex.busy_vertices(), 0u);
    }
  }
}

TEST(ExchangeGrowth, RejectsAPlanForTheWrongBase) {
  const auto base = networks::build_cantor({3, 0});
  const auto other = networks::build_cantor({2, 0});
  svc::Exchange ex(base);
  svc::GrowthPlan plan;
  plan.grown = networks::grow_cantor(other, {2, 0});
  const svc::GrowthReport rep = ex.grow(std::move(plan));
  EXPECT_FALSE(rep.applied);
  EXPECT_NE(rep.error.find("growth plan rejected"), std::string::npos);
  EXPECT_EQ(ex.stats().growths, 0u);
  // The exchange still works.
  const svc::Outcome o = ex.call({0, 1, 0, 1});
  EXPECT_TRUE(o.connected());
}

// --------------------------------------------- overlays across the merge

// Mixed open/stuck overlays injected pre-growth survive the merge at their
// stable edge ids, and the grown exchange routes exactly like a fresh
// exchange over the same grown topology with the same faults.
TEST(ExchangeGrowth, MixedOverlaysSurviveAndMatchAFreshExchange) {
  const auto base = networks::build_cantor({3, 0});
  svc::Exchange ex(base);
  const auto n = static_cast<std::uint32_t>(ex.input_count());

  // Pick one mid-path switch to fail open and one to weld, off a probe.
  const svc::Outcome probe = ex.call({0, 3, 0, 99});
  ASSERT_TRUE(probe.connected());
  const auto path = ex.path_of(probe.id);
  ASSERT_GE(path.size(), 3u);
  const graph::EdgeId dead = edge_between(ex.network().g, path[0], path[1]);
  const graph::EdgeId weld = edge_between(ex.network().g, path[1], path[2]);
  ex.hangup(probe.id);
  ex.apply({0.0, dead, fault::FaultEvent::Kind::kFail});
  ex.apply({0.0, weld, fault::FaultEvent::Kind::kStuckOn});
  const auto failed_before = ex.failed_switch_count();
  const auto stuck_before = ex.stuck_switch_count();
  const bool shorted_before = ex.shorted();
  ASSERT_GT(failed_before, 0u);
  ASSERT_GT(stuck_before, 0u);

  // A couple of live calls ride across the merge too.
  std::vector<svc::CallId> held;
  for (std::uint32_t i = 1; i < 4; ++i) {
    const svc::Outcome o = ex.call({i, static_cast<std::uint32_t>(i + 4), 0, i});
    ASSERT_TRUE(o.connected());
    held.push_back(o.id);
  }

  ASSERT_TRUE(ex.grow(doubling_plan(ex, {3, 0})).applied);
  EXPECT_EQ(ex.failed_switch_count(), failed_before);
  EXPECT_EQ(ex.stuck_switch_count(), stuck_before);
  EXPECT_EQ(ex.shorted(), shorted_before);

  // Parity against a fresh exchange on the SAME grown network with the
  // same fault events (edge ids are stable, so they name the same
  // switches) and the same held pairs.
  svc::Exchange fresh(ex.network());
  fresh.apply({0.0, dead, fault::FaultEvent::Kind::kFail});
  fresh.apply({0.0, weld, fault::FaultEvent::Kind::kStuckOn});
  std::vector<svc::CallId> fresh_held;
  for (std::uint32_t i = 1; i < 4; ++i) {
    const svc::Outcome o =
        fresh.call({i, static_cast<std::uint32_t>(i + 4), 0, i});
    ASSERT_TRUE(o.connected());
    fresh_held.push_back(o.id);
  }
  const auto n2 = static_cast<std::uint32_t>(ex.input_count());
  ASSERT_EQ(n2, 2 * n);
  for (std::uint32_t in = 0; in < n2; ++in)
    for (std::uint32_t out = 0; out < n2; ++out) {
      if (!ex.input_idle(in) || !ex.output_idle(out)) continue;
      const svc::Outcome a = ex.call({in, out, 0, 7});
      const svc::Outcome b = fresh.call({in, out, 0, 7});
      EXPECT_EQ(a.connected(), b.connected()) << in << "->" << out;
      if (a.connected()) ex.hangup(a.id);
      if (b.connected()) fresh.hangup(b.id);
    }
  for (const auto id : held) EXPECT_EQ(ex.hangup(id), svc::RejectReason::kNone);
  for (const auto id : fresh_held) fresh.hangup(id);
  EXPECT_EQ(ex.busy_vertices(), 0u);
}

// ----------------------------------------------- TopologyEvent dispatch

TEST(TopologyEvent, OneSeamDispatchesFaultsAndGrowth) {
  const auto base = networks::build_cantor({3, 0});
  svc::Exchange ex(base);

  // kFault through the seam == the direct overload.
  const svc::Outcome probe = ex.call({0, 1, 0, 5});
  ASSERT_TRUE(probe.connected());
  const auto path = ex.path_of(probe.id);
  const graph::EdgeId e = edge_between(ex.network().g, path[0], path[1]);
  const fault::FaultEvent ev{0.0, e, fault::FaultEvent::Kind::kFail};
  const svc::TopologyOutcome fo = ex.apply(svc::TopologyEvent::make_fault(ev));
  EXPECT_FALSE(fo.growth.has_value());
  EXPECT_EQ(fo.fault.calls_killed(), 1u);
  ex.apply({0.0, e, fault::FaultEvent::Kind::kRepair});

  // kGrow through the seam consumes the plan and returns the report.
  svc::GrowthPlan plan = doubling_plan(ex, {3, 0});
  const svc::TopologyOutcome go = ex.apply(svc::TopologyEvent::make_grow(plan));
  ASSERT_TRUE(go.growth.has_value());
  EXPECT_TRUE(go.growth->applied);
  EXPECT_EQ(ex.network().name, "cantor-16-m4");

  // A kGrow event with no plan is a typed rejection, not a crash.
  svc::TopologyEvent empty;
  empty.kind = svc::TopologyEvent::Kind::kGrow;
  const svc::TopologyOutcome bad = ex.apply(empty);
  ASSERT_TRUE(bad.growth.has_value());
  EXPECT_FALSE(bad.growth->applied);
}

// --------------------------------------------------- ops plane kGrow ack

TEST(ControlPlaneGrowth, KGrowAcksRealEffectsAndDeclinesARegrow) {
  const auto base = networks::build_cantor({3, 0});
  svc::Exchange ex(base);
  ops::ControlPlane plane(ex);

  // Live calls make the remap count real.
  std::vector<svc::CallId> held;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const svc::Outcome o = ex.call({i, i, 0, i + 1});
    ASSERT_TRUE(o.connected());
    held.push_back(o.id);
  }

  ops::Command cmd;
  cmd.kind = ops::CommandKind::kGrow;
  const auto t1 = plane.queue().post(cmd);
  EXPECT_EQ(plane.pump(), 1u);
  const std::optional<ops::Ack> ack = plane.queue().try_ack(t1);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, ops::AckStatus::kOk);
  ASSERT_TRUE(ack->growth.has_value());
  EXPECT_TRUE(ack->growth->applied);
  EXPECT_GT(ack->growth->switches_added, 0u);
  EXPECT_EQ(ack->growth->calls_remapped, held.size());
  EXPECT_EQ(ack->growth->calls_killed, 0u);
  EXPECT_NE(ack->text.find("grew to cantor-16-m4"), std::string::npos)
      << ack->text;
  EXPECT_EQ(ex.network().name, "cantor-16-m4");

  // Regrowing the (now non-canonical) grown exchange is declined typed.
  const auto t2 = plane.queue().post(cmd);
  plane.pump();
  const std::optional<ops::Ack> ack2 = plane.queue().try_ack(t2);
  ASSERT_TRUE(ack2.has_value());
  EXPECT_EQ(ack2->status, ops::AckStatus::kUnsupported);
  EXPECT_NE(ack2->text.find("growth planning failed"), std::string::npos)
      << ack2->text;
  EXPECT_EQ(ex.stats().growths, 1u);

  // A custom planner that declines produces the typed no-plan ack.
  plane.set_growth_planner(
      [](const svc::Exchange&, std::uint64_t) { return std::nullopt; });
  const auto t3 = plane.queue().post(cmd);
  plane.pump();
  const std::optional<ops::Ack> ack3 = plane.queue().try_ack(t3);
  ASSERT_TRUE(ack3.has_value());
  EXPECT_EQ(ack3->status, ops::AckStatus::kUnsupported);
  EXPECT_NE(ack3->text.find("no growth plan"), std::string::npos);

  for (const auto id : held) EXPECT_EQ(ex.hangup(id), svc::RejectReason::kNone);
}

// ------------------------------------------------ batched plane + growth

TEST(ExchangeGrowth, WaveDrainServesNewTerminalsTheEpochAfterTheMerge) {
  const auto base = networks::build_cantor({3, 0});
  svc::ExchangeConfig cfg;
  cfg.backend = svc::Backend::kConcurrent;
  cfg.sessions = 2;
  svc::Exchange ex(base, std::move(cfg));
  const auto n = static_cast<std::uint32_t>(ex.input_count());

  std::vector<svc::Outcome> done;
  const auto on_done = [&done](const svc::Outcome& o) { done.push_back(o); };

  // Epoch 1: old terminals through the wave plane.
  for (std::uint32_t i = 0; i < n; ++i)
    ex.submit({i, static_cast<std::uint32_t>((i + 1) % n), 0, i + 1}, on_done);
  EXPECT_EQ(ex.drain_all(), static_cast<std::size_t>(n));
  std::vector<svc::CallId> held;
  for (const auto& o : done)
    if (o.connected()) held.push_back(o.id);
  EXPECT_EQ(held.size(), n);
  done.clear();

  // The merge lands at the epoch boundary (the drain contract's quiesce).
  ASSERT_TRUE(ex.grow(doubling_plan(ex, {3, 0})).applied);

  // Epoch 2: every NEW terminal pair routes through the grown waves.
  const auto n2 = static_cast<std::uint32_t>(ex.input_count());
  for (std::uint32_t i = n; i < n2; ++i)
    ex.submit({i, static_cast<std::uint32_t>(n2 - 1 - (i - n)), 0, 100 + i},
              on_done);
  EXPECT_EQ(ex.drain_all(), static_cast<std::size_t>(n2 - n));
  std::size_t new_connected = 0;
  for (const auto& o : done)
    if (o.connected()) {
      ++new_connected;
      held.push_back(o.id);
    }
  EXPECT_EQ(new_connected, static_cast<std::size_t>(n2 - n));

  for (const auto id : held) EXPECT_EQ(ex.hangup(id), svc::RejectReason::kNone);
  EXPECT_EQ(ex.active_calls(), 0u);
  EXPECT_EQ(ex.busy_vertices(), 0u);
}

// -------------------------------------------------- handle-typing rigor

TEST(ExchangeGrowth, StaleAndFaultedHandlesStayTypedAcrossGrowth) {
  const auto base = networks::build_cantor({3, 0});
  svc::Exchange ex(base);

  // A call killed by a fault BEFORE growth keeps its typed kFaulted ack
  // after the merge (fault ack memory is remapped, not dropped).
  const svc::Outcome doomed = ex.call({0, 1, 0, 1});
  ASSERT_TRUE(doomed.connected());
  const auto path = ex.path_of(doomed.id);
  const graph::EdgeId e = edge_between(ex.network().g, path[0], path[1]);
  ex.apply({0.0, e, fault::FaultEvent::Kind::kFail});
  ex.apply({0.0, e, fault::FaultEvent::Kind::kRepair});

  // A call hung up before growth: its handle is stale after the merge.
  const svc::Outcome finished = ex.call({2, 3, 0, 2});
  ASSERT_TRUE(finished.connected());
  EXPECT_EQ(ex.hangup(finished.id), svc::RejectReason::kNone);

  ASSERT_TRUE(ex.grow(doubling_plan(ex, {3, 0})).applied);

  const svc::RejectReason dead_ack = ex.hangup(doomed.id);
  EXPECT_TRUE(dead_ack == svc::RejectReason::kFaulted ||
              dead_ack == svc::RejectReason::kStaleHandle)
      << to_string(dead_ack);
  EXPECT_EQ(ex.hangup(finished.id), svc::RejectReason::kStaleHandle);
  EXPECT_EQ(ex.stats().calls_killed_by_growth, 0u);
}

}  // namespace
}  // namespace ftcs
