#!/usr/bin/env python3
"""Bench-regression gate for BENCH_routing.json.

Compares the calls/sec series of a fresh smoke run against the committed
baseline file and fails (exit 1) on a regression beyond the tolerance,
replacing the eyeball-only `cat` the CI bench step used to end with.

What is compared (every series keyed so runs with different sweeps still
match up):
  - the aggregate "calls_per_sec"
  - per-network churn points        (networks[].name)
  - the thread-scaling curve        (thread_scaling.points[].threads)
  - the batched-admission series    (batched_admission.points[].batch)
  - the degraded-mode series        (degraded_mode.points[].eps)

Runner noise policy: individual points on shared CI boxes are noisy, so the
gate trips on the GEOMETRIC MEAN of the matched current/baseline ratios
dropping below (1 - tolerance); any single point falling below half its
baseline trips it too (that is never noise at 30% tolerance). Points present
in only one file are reported and skipped.

Usage:
  tools/check_bench.py --baseline BENCH_committed.json \
      --current BENCH_routing.json [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def series_points(doc: dict) -> dict[str, float]:
    """Flattens every calls/sec measurement into {key: calls_per_sec}."""
    points: dict[str, float] = {}
    if "calls_per_sec" in doc:
        points["aggregate"] = float(doc["calls_per_sec"])
    for row in doc.get("networks", []):
        points[f"churn/{row['name']}"] = float(row["calls_per_sec"])
    scaling = doc.get("thread_scaling", {})
    for p in scaling.get("points", []):
        points[f"threads/{p['threads']}"] = float(p["calls_per_sec"])
    batched = doc.get("batched_admission", {})
    for p in batched.get("points", []):
        points[f"batch/{p['batch']}"] = float(p["calls_per_sec"])
    degraded = doc.get("degraded_mode", {})
    for p in degraded.get("points", []):
        points[f"faults/eps={p['eps']:g}"] = float(p["calls_per_sec"])
    return points


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_routing.json")
    ap.add_argument("--current", required=True,
                    help="the smoke run's BENCH_routing.json")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional regression of the geometric "
                         "mean (default 0.30)")
    args = ap.parse_args()

    try:
        base = series_points(load(args.baseline))
        cur = series_points(load(args.current))
    except (OSError, ValueError, KeyError) as exc:
        print(f"check_bench: cannot parse inputs: {exc}", file=sys.stderr)
        return 1

    shared = sorted(k for k in base if k in cur and base[k] > 0 and cur[k] > 0)
    if not shared:
        print("check_bench: no comparable calls/sec points between "
              f"{args.baseline} and {args.current}", file=sys.stderr)
        return 1
    for key in sorted(set(base) ^ set(cur)):
        side = "baseline" if key in base else "current"
        print(f"check_bench: note: '{key}' only in the {side} file; skipped")

    worst_key, worst_ratio = None, math.inf
    log_sum = 0.0
    print(f"{'series':<24} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for key in shared:
        ratio = cur[key] / base[key]
        log_sum += math.log(ratio)
        if ratio < worst_ratio:
            worst_key, worst_ratio = key, ratio
        print(f"{key:<24} {base[key]:>12.0f} {cur[key]:>12.0f} {ratio:>7.2f}")
    geomean = math.exp(log_sum / len(shared))
    floor = 1.0 - args.tolerance
    print(f"geometric mean ratio over {len(shared)} points: {geomean:.3f} "
          f"(gate: >= {floor:.2f}); worst: {worst_key} at {worst_ratio:.2f}")

    if geomean < floor:
        print(f"check_bench: FAIL — calls/sec regressed "
              f"{(1.0 - geomean) * 100:.0f}% overall "
              f"(tolerance {args.tolerance * 100:.0f}%)", file=sys.stderr)
        return 1
    if worst_ratio < 0.5:
        print(f"check_bench: FAIL — '{worst_key}' fell to "
              f"{worst_ratio * 100:.0f}% of its baseline", file=sys.stderr)
        return 1
    print("check_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
