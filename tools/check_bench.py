#!/usr/bin/env python3
"""Bench-regression gate for BENCH_routing.json.

Compares a fresh smoke run against the committed baseline file and fails
(exit 1) on a regression beyond the tolerance, replacing the eyeball-only
`cat` the CI bench step used to end with.

Two metric families are gated independently:
  - calls/sec (throughput, higher is better)
  - visits/connect (search work per request, LOWER is better — the wave /
    direction-optimizing machinery's win; a silent visit blow-up precedes a
    throughput loss on bigger networks)

Series keyed so runs with different sweeps still match up:
  - the aggregate "calls_per_sec"
  - per-network churn points        (networks[].name)
  - the thread-scaling curve        (thread_scaling.points[].threads)
  - the batched-admission series    (batched_admission.points[].batch)
  - the deep-network wave point     (batched_admission_k7.points[].batch)
  - the degraded-mode series        (degraded_mode.points[].eps)
  - the locality-relabel pairs      (relabel.points[].network + .mode)
  - the affinity sweep              (affinity_scaling.points[].policy —
                                     keyed by the REQUESTED policy, so
                                     baselines from hosts that degraded to
                                     "none" still line up)
  - the admission-policy A/B        (admission_policy.points[].policy —
                                     static vs overlay-aware under the
                                     bursty fault storm)
  - the hitless-growth series       (growth.points[].phase — churn rate
                                     before/during/after doubling the
                                     exchange live; `during` also carries
                                     the structural gate below)

The growth series additionally gets an absolute structural gate: the
`during` point's calls_killed must be EXACTLY 0 (the hitless contract,
measured — not copied from the report), its quiesce_ms non-negative, and
a growth that remapped no calls while churn was up is suspicious enough
to fail.

Runner noise policy: individual points on shared CI boxes are noisy, so the
gate trips on the GEOMETRIC MEAN of the matched improvement ratios dropping
below (1 - tolerance); any single point falling below half its baseline
(throughput) or doubling its baseline (visits) trips it too — that is never
noise at 30% tolerance. Points present in only one file are reported and
skipped, so adding a series stays backward-compatible.

When BOTH files were recorded with --repeat >= 3 (the bench stamps the
"repeats" key), each point is already a median-of-K and most run-to-run
noise is gone, so the tolerance tightens to 2/3 of the requested value
(default 0.30 -> 0.20).

Usage:
  tools/check_bench.py --baseline BENCH_committed.json \
      --current BENCH_routing.json [--tolerance 0.30]
  tools/check_bench.py --self-test
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def series_points(doc: dict, metric: str) -> dict[str, float]:
    """Flattens every `metric` measurement into {key: value}.

    Schema drift is warned about and skipped, never fatal: a row missing
    its key field (a series recorded by a newer/older bench than the one
    that wrote the other file) must not KeyError the whole gate — the
    remaining series still deserve their comparison.
    """
    points: dict[str, float] = {}
    if metric == "calls_per_sec" and "calls_per_sec" in doc:
        points["aggregate"] = float(doc["calls_per_sec"])

    def take(key: str, row: dict) -> None:
        if metric in row:
            points[key] = float(row[metric])

    def keyed(rows: list, family: str, key_fn) -> None:
        for row in rows:
            try:
                key = key_fn(row)
            except KeyError as exc:
                print(f"check_bench: warn: a '{family}' row is missing its "
                      f"{exc} key; row skipped")
                continue
            take(key, row)

    keyed(doc.get("networks", []), "networks",
          lambda r: f"churn/{r['name']}")
    keyed(doc.get("thread_scaling", {}).get("points", []), "thread_scaling",
          lambda p: f"threads/{p['threads']}")
    keyed(doc.get("batched_admission", {}).get("points", []),
          "batched_admission", lambda p: f"batch/{p['batch']}")
    keyed(doc.get("batched_admission_k7", {}).get("points", []),
          "batched_admission_k7", lambda p: f"batch_k7/{p['batch']}")
    keyed(doc.get("degraded_mode", {}).get("points", []), "degraded_mode",
          lambda p: f"faults/eps={p['eps']:g}")
    keyed(doc.get("relabel", {}).get("points", []), "relabel",
          lambda p: f"relabel/{p['network']}/{p['mode']}")
    keyed(doc.get("affinity_scaling", {}).get("points", []),
          "affinity_scaling", lambda p: f"affinity/{p['policy']}")
    keyed(doc.get("admission_policy", {}).get("points", []),
          "admission_policy", lambda p: f"policy/{p['policy']}")
    keyed(doc.get("growth", {}).get("points", []), "growth",
          lambda p: f"growth/{p['phase']}")
    keyed(doc.get("federation_scaling", {}).get("points", []),
          "federation_scaling",
          lambda p: (f"federation/{p['part']}/{p['topology']}/"
                     f"{p['shards']}x{p['member']}/f={p['inter_fraction']:g}"))
    return points


def gate(label: str, base: dict[str, float], cur: dict[str, float],
         floor: float, lower_is_better: bool, required: bool) -> bool:
    """Prints the comparison table; returns False on a gate trip."""
    shared = sorted(k for k in base if k in cur and base[k] > 0 and cur[k] > 0)
    for key in sorted(set(base) ^ set(cur)):
        side = "baseline" if key in base else "current"
        print(f"check_bench: note: {label} '{key}' only in the {side} file; "
              "skipped")
    if not shared:
        if required:
            print(f"check_bench: no comparable {label} points between the "
                  "baseline and current files", file=sys.stderr)
            return False
        # visits/connect is absent from pre-wave baselines: skipping the
        # whole family keeps old baselines comparable.
        print(f"check_bench: no comparable {label} points; family skipped")
        return True

    worst_key, worst_ratio = None, math.inf
    log_sum = 0.0
    print(f"[{label}]")
    print(f"{'series':<24} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for key in shared:
        # Normalized so ratio > 1 is always an improvement.
        ratio = (base[key] / cur[key]) if lower_is_better \
            else (cur[key] / base[key])
        log_sum += math.log(ratio)
        if ratio < worst_ratio:
            worst_key, worst_ratio = key, ratio
        print(f"{key:<24} {base[key]:>12.1f} {cur[key]:>12.1f} {ratio:>7.2f}")
    geomean = math.exp(log_sum / len(shared))
    print(f"geometric mean ratio over {len(shared)} points: {geomean:.3f} "
          f"(gate: >= {floor:.2f}); worst: {worst_key} at {worst_ratio:.2f}")

    if geomean < floor:
        print(f"check_bench: FAIL — {label} regressed "
              f"{(1.0 - geomean) * 100:.0f}% overall", file=sys.stderr)
        return False
    if worst_ratio < 0.5:
        print(f"check_bench: FAIL — {label} '{worst_key}' fell to "
              f"{worst_ratio * 100:.0f}% of its baseline", file=sys.stderr)
        return False
    return True


def check_federation(doc: dict) -> bool:
    """Structural acceptance of the federation series in the CURRENT run.

    Two properties are absolute, not baseline-relative, so they get their
    own gate: the fixed-plant shard sweep must show aggregate calls/sec
    rising monotonically from 1 exchange to 8 with at least 3x total (the
    recursion's algorithmic win), and the 1-shard federation must price the
    intra-shard fast path at noise level against a raw Exchange.
    """
    fed = doc.get("federation_scaling")
    if not fed:
        return True  # pre-federation file: nothing to check
    sweep = sorted((p for p in fed.get("points", [])
                    if p.get("part") == "sweep"),
                   key=lambda p: int(p["shards"]))
    ok = True
    if sweep:
        rates = [(int(p["shards"]), float(p["calls_per_sec"])) for p in sweep]
        for (s0, r0), (s1, r1) in zip(rates, rates[1:]):
            if r1 <= r0:
                print(f"check_bench: FAIL — federation sweep not monotone: "
                      f"{s1} shards ({r1:.0f}/s) <= {s0} shards ({r0:.0f}/s)",
                      file=sys.stderr)
                ok = False
        speedup = rates[-1][1] / rates[0][1] if rates[0][1] > 0 else 0.0
        print(f"federation sweep: {rates[0][0]} -> {rates[-1][0]} shards, "
              f"{speedup:.2f}x aggregate calls/sec")
        if rates[-1][0] >= 8 and speedup < 3.0:
            print(f"check_bench: FAIL — federation sweep reached only "
                  f"{speedup:.2f}x at {rates[-1][0]} shards (need >= 3x)",
                  file=sys.stderr)
            ok = False
    gate_row = fed.get("intra_gate", {})
    if gate_row:
        ratio = float(gate_row.get("ratio", 0.0))
        print(f"federation intra gate: ratio {ratio:.3f}")
        if ratio < 0.8:
            print(f"check_bench: FAIL — federated intra path at "
                  f"{ratio:.2f}x of the raw exchange (need >= 0.8)",
                  file=sys.stderr)
            ok = False
    return ok


def check_growth(doc: dict) -> bool:
    """Structural acceptance of the hitless-growth series in the CURRENT run.

    The hitless contract is absolute, not baseline-relative: the `during`
    window — which brackets the live Exchange::grow merge — must record
    calls_killed == 0 (a MEASURED active-call delta across the merge, so a
    nonzero value means real dropped calls), a non-negative quiesce pause,
    and at least one live call actually remapped (a growth that found no
    calls to carry over proves nothing about hitlessness).
    """
    growth = doc.get("growth")
    if not growth:
        return True  # pre-growth file: nothing to check
    during = [p for p in growth.get("points", [])
              if p.get("phase") == "during"]
    if not during:
        print("check_bench: FAIL — growth series has no 'during' point",
              file=sys.stderr)
        return False
    ok = True
    for p in during:
        killed = int(p.get("calls_killed", -1))
        quiesce = float(p.get("quiesce_ms", -1.0))
        remapped = int(p.get("calls_remapped", 0))
        print(f"growth gate: {growth.get('network', '?')} -> "
              f"{growth.get('grown', '?')}: killed={killed} "
              f"remapped={remapped} quiesce={quiesce:.3f} ms")
        if killed != 0:
            print(f"check_bench: FAIL — growth killed {killed} live calls "
                  "(the hitless contract requires exactly 0)",
                  file=sys.stderr)
            ok = False
        if quiesce < 0.0:
            print("check_bench: FAIL — growth quiesce_ms missing or "
                  "negative", file=sys.stderr)
            ok = False
        if remapped <= 0:
            print("check_bench: FAIL — growth remapped no live calls; the "
                  "series did not exercise the hitless path",
                  file=sys.stderr)
            ok = False
    return ok


def effective_tolerance(tolerance: float, base_doc: dict,
                        cur_doc: dict) -> float:
    """Tightens the tolerance to 2/3 when both runs are median-of-K, K>=3."""
    base_reps = int(base_doc.get("repeats", 1))
    cur_reps = int(cur_doc.get("repeats", 1))
    if base_reps >= 3 and cur_reps >= 3:
        tightened = tolerance * 2.0 / 3.0
        print(f"check_bench: both runs are median-of-{min(base_reps, cur_reps)}"
              f"+; tolerance tightened {tolerance:.2f} -> {tightened:.2f}")
        return tightened
    return tolerance


def self_test() -> int:
    """Pure-python pins of the gate arithmetic (run by CI before gating)."""
    doc = {
        "calls_per_sec": 1000,
        "repeats": 3,
        "networks": [
            {"name": "n1", "calls_per_sec": 100, "visits_per_connect": 10.0},
        ],
        "thread_scaling": {"points": [
            {"threads": 2, "calls_per_sec": 150, "visits_per_connect": 9.0},
        ]},
        "relabel": {"points": [
            {"network": "n1", "mode": "none", "calls_per_sec": 100,
             "visits_per_connect": 10.0},
            {"network": "n1", "mode": "locality", "calls_per_sec": 140,
             "visits_per_connect": 10.0},
        ]},
        "affinity_scaling": {"points": [
            {"policy": "spread", "effective": "none", "calls_per_sec": 120,
             "visits_per_connect": 8.0},
        ]},
        "admission_policy": {"points": [
            {"policy": "static", "calls_per_sec": 90, "hard_rejects": 50},
            {"policy": "overlay", "calls_per_sec": 95, "hard_rejects": 12},
            # Schema drift: no "policy" key — must warn and skip, not raise.
            {"calls_per_sec": 77},
        ]},
        "growth": {"network": "cantor-32-m5", "grown": "cantor-64-m6",
                   "points": [
            {"phase": "before", "calls_per_sec": 200},
            {"phase": "during", "calls_per_sec": 110, "quiesce_ms": 0.05,
             "calls_remapped": 18, "calls_killed": 0,
             "switches_added": 6784},
            {"phase": "after", "calls_per_sec": 120},
        ]},
        "federation_scaling": {"points": [
            # Nested shard/trunk keys: the key must carry part, topology,
            # shard count, member network, and the inter-traffic fraction.
            {"part": "sweep", "topology": "mesh", "shards": 1,
             "member": "cantor-k8", "inter_fraction": 0.1,
             "calls_per_sec": 100, "visits_per_connect": 2400.0},
            {"part": "sweep", "topology": "mesh", "shards": 8,
             "member": "cantor-k5", "inter_fraction": 0.1,
             "calls_per_sec": 400, "visits_per_connect": 200.0},
            {"part": "scaleout", "topology": "ring", "shards": 4096,
             "member": "cantor-k5", "inter_fraction": 0.1,
             "calls_per_sec": 220, "visits_per_connect": 250.0},
        ], "intra_gate": {"ratio": 0.95}},
    }
    pts = series_points(doc, "calls_per_sec")
    expect = {"aggregate": 1000.0, "churn/n1": 100.0, "threads/2": 150.0,
              "relabel/n1/none": 100.0, "relabel/n1/locality": 140.0,
              "affinity/spread": 120.0, "policy/static": 90.0,
              "policy/overlay": 95.0,
              "growth/before": 200.0, "growth/during": 110.0,
              "growth/after": 120.0,
              "federation/sweep/mesh/1xcantor-k8/f=0.1": 100.0,
              "federation/sweep/mesh/8xcantor-k5/f=0.1": 400.0,
              "federation/scaleout/ring/4096xcantor-k5/f=0.1": 220.0}
    assert pts == expect, f"series_points mismatch: {pts}"

    # Federation structural gate: the pinned doc passes (4x at 8 shards,
    # gate ratio 0.95); a sagging middle point breaks monotonicity; a weak
    # 8-shard speedup or a slow intra path each trip their own check.
    assert check_federation(doc)
    assert check_federation({})  # pre-federation files are fine
    import copy
    bad = copy.deepcopy(doc)
    bad["federation_scaling"]["points"][1]["calls_per_sec"] = 90
    assert not check_federation(bad)
    weak = copy.deepcopy(doc)
    weak["federation_scaling"]["points"][1]["calls_per_sec"] = 250
    assert not check_federation(weak)
    slow_gate = copy.deepcopy(doc)
    slow_gate["federation_scaling"]["intra_gate"]["ratio"] = 0.5
    assert not check_federation(slow_gate)

    # Growth structural gate: the pinned doc passes; a single killed call
    # fails absolutely; a growth that remapped nothing fails; a growth
    # series with no `during` point fails; pre-growth files pass.
    assert check_growth(doc)
    assert check_growth({})
    killer = copy.deepcopy(doc)
    killer["growth"]["points"][1]["calls_killed"] = 1
    assert not check_growth(killer)
    idle = copy.deepcopy(doc)
    idle["growth"]["points"][1]["calls_remapped"] = 0
    assert not check_growth(idle)
    headless = copy.deepcopy(doc)
    headless["growth"]["points"] = [p for p in headless["growth"]["points"]
                                    if p["phase"] != "during"]
    assert not check_growth(headless)

    # Identical files pass at any tolerance; a uniform 40% loss trips the
    # 30% geomean gate; a single halved point trips the worst-point gate
    # even when the geomean survives.
    assert gate("t", pts, dict(pts), 0.70, False, True)
    lost = {k: v * 0.6 for k, v in pts.items()}
    assert not gate("t", pts, lost, 0.70, False, True)
    one_bad = dict(pts)
    one_bad["churn/n1"] = pts["churn/n1"] * 0.49
    assert not gate("t", pts, one_bad, 0.70, False, True)
    # visits: LOWER is better — a uniform drop is an improvement.
    better = {k: v * 0.5 for k, v in pts.items()}
    assert gate("t", pts, better, 0.70, True, False)

    # Repeat-aware tightening: on at both >=3, off when either side is a
    # single run.
    assert abs(effective_tolerance(0.30, doc, doc) - 0.20) < 1e-9
    assert effective_tolerance(0.30, doc, {"repeats": 1}) == 0.30
    assert effective_tolerance(0.30, {}, doc) == 0.30

    print("check_bench: self-test OK")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="committed BENCH_routing.json")
    ap.add_argument("--current", help="the smoke run's BENCH_routing.json")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional regression of the geometric "
                         "mean, per metric family (default 0.30; tightened "
                         "to 2/3 when both runs record repeats >= 3)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the gate's own arithmetic pins and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required (or use --self-test)")

    try:
        base_doc = load(args.baseline)
        cur_doc = load(args.current)
    except (OSError, ValueError) as exc:
        print(f"check_bench: cannot parse inputs: {exc}", file=sys.stderr)
        return 1

    floor = 1.0 - effective_tolerance(args.tolerance, base_doc, cur_doc)
    try:
        ok = gate("calls/sec",
                  series_points(base_doc, "calls_per_sec"),
                  series_points(cur_doc, "calls_per_sec"),
                  floor, lower_is_better=False, required=True)
        ok &= gate("visits/connect",
                   series_points(base_doc, "visits_per_connect"),
                   series_points(cur_doc, "visits_per_connect"),
                   floor, lower_is_better=True, required=False)
        ok &= check_federation(cur_doc)
        ok &= check_growth(cur_doc)
    except (ValueError, KeyError) as exc:
        print(f"check_bench: cannot parse inputs: {exc}", file=sys.stderr)
        return 1
    if not ok:
        return 1
    print("check_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
