#!/usr/bin/env python3
"""Bench-regression gate for BENCH_routing.json.

Compares a fresh smoke run against the committed baseline file and fails
(exit 1) on a regression beyond the tolerance, replacing the eyeball-only
`cat` the CI bench step used to end with.

Two metric families are gated independently:
  - calls/sec (throughput, higher is better)
  - visits/connect (search work per request, LOWER is better — the wave /
    direction-optimizing machinery's win; a silent visit blow-up precedes a
    throughput loss on bigger networks)

Series keyed so runs with different sweeps still match up:
  - the aggregate "calls_per_sec"
  - per-network churn points        (networks[].name)
  - the thread-scaling curve        (thread_scaling.points[].threads)
  - the batched-admission series    (batched_admission.points[].batch)
  - the deep-network wave point     (batched_admission_k7.points[].batch)
  - the degraded-mode series        (degraded_mode.points[].eps)

Runner noise policy: individual points on shared CI boxes are noisy, so the
gate trips on the GEOMETRIC MEAN of the matched improvement ratios dropping
below (1 - tolerance); any single point falling below half its baseline
(throughput) or doubling its baseline (visits) trips it too — that is never
noise at 30% tolerance. Points present in only one file are reported and
skipped, so adding a series stays backward-compatible.

Usage:
  tools/check_bench.py --baseline BENCH_committed.json \
      --current BENCH_routing.json [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def series_points(doc: dict, metric: str) -> dict[str, float]:
    """Flattens every `metric` measurement into {key: value}."""
    points: dict[str, float] = {}
    if metric == "calls_per_sec" and "calls_per_sec" in doc:
        points["aggregate"] = float(doc["calls_per_sec"])

    def take(key: str, row: dict) -> None:
        if metric in row:
            points[key] = float(row[metric])

    for row in doc.get("networks", []):
        take(f"churn/{row['name']}", row)
    for p in doc.get("thread_scaling", {}).get("points", []):
        take(f"threads/{p['threads']}", p)
    for p in doc.get("batched_admission", {}).get("points", []):
        take(f"batch/{p['batch']}", p)
    for p in doc.get("batched_admission_k7", {}).get("points", []):
        take(f"batch_k7/{p['batch']}", p)
    for p in doc.get("degraded_mode", {}).get("points", []):
        take(f"faults/eps={p['eps']:g}", p)
    return points


def gate(label: str, base: dict[str, float], cur: dict[str, float],
         floor: float, lower_is_better: bool, required: bool) -> bool:
    """Prints the comparison table; returns False on a gate trip."""
    shared = sorted(k for k in base if k in cur and base[k] > 0 and cur[k] > 0)
    for key in sorted(set(base) ^ set(cur)):
        side = "baseline" if key in base else "current"
        print(f"check_bench: note: {label} '{key}' only in the {side} file; "
              "skipped")
    if not shared:
        if required:
            print(f"check_bench: no comparable {label} points between the "
                  "baseline and current files", file=sys.stderr)
            return False
        # visits/connect is absent from pre-wave baselines: skipping the
        # whole family keeps old baselines comparable.
        print(f"check_bench: no comparable {label} points; family skipped")
        return True

    worst_key, worst_ratio = None, math.inf
    log_sum = 0.0
    print(f"[{label}]")
    print(f"{'series':<24} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for key in shared:
        # Normalized so ratio > 1 is always an improvement.
        ratio = (base[key] / cur[key]) if lower_is_better \
            else (cur[key] / base[key])
        log_sum += math.log(ratio)
        if ratio < worst_ratio:
            worst_key, worst_ratio = key, ratio
        print(f"{key:<24} {base[key]:>12.1f} {cur[key]:>12.1f} {ratio:>7.2f}")
    geomean = math.exp(log_sum / len(shared))
    print(f"geometric mean ratio over {len(shared)} points: {geomean:.3f} "
          f"(gate: >= {floor:.2f}); worst: {worst_key} at {worst_ratio:.2f}")

    if geomean < floor:
        print(f"check_bench: FAIL — {label} regressed "
              f"{(1.0 - geomean) * 100:.0f}% overall", file=sys.stderr)
        return False
    if worst_ratio < 0.5:
        print(f"check_bench: FAIL — {label} '{worst_key}' fell to "
              f"{worst_ratio * 100:.0f}% of its baseline", file=sys.stderr)
        return False
    return True


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_routing.json")
    ap.add_argument("--current", required=True,
                    help="the smoke run's BENCH_routing.json")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional regression of the geometric "
                         "mean, per metric family (default 0.30)")
    args = ap.parse_args()

    try:
        base_doc = load(args.baseline)
        cur_doc = load(args.current)
    except (OSError, ValueError) as exc:
        print(f"check_bench: cannot parse inputs: {exc}", file=sys.stderr)
        return 1

    floor = 1.0 - args.tolerance
    try:
        ok = gate("calls/sec",
                  series_points(base_doc, "calls_per_sec"),
                  series_points(cur_doc, "calls_per_sec"),
                  floor, lower_is_better=False, required=True)
        ok &= gate("visits/connect",
                   series_points(base_doc, "visits_per_connect"),
                   series_points(cur_doc, "visits_per_connect"),
                   floor, lower_is_better=True, required=False)
    except (ValueError, KeyError) as exc:
        print(f"check_bench: cannot parse inputs: {exc}", file=sys.stderr)
        return 1
    if not ok:
        return 1
    print("check_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
