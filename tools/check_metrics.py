#!/usr/bin/env python3
"""Validates the ops::MetricsRegistry exports captured from a daemon session.

The telephone_exchange --daemon REPL prints metric snapshots between marker
lines; this gate extracts the LAST Prometheus block and the LAST JSON block
from a captured session log (or treats the whole input as raw Prometheus
text when no markers are present) and checks both against the contracts the
scrapers rely on:

Prometheus text exposition (0.0.4):
  - every sample belongs to a family declared by a preceding `# TYPE` line
    (histogram _bucket/_sum/_count samples map to their base family)
  - every value parses as a finite number
  - per histogram labelset: `le` ascending, bucket counts cumulative
    (non-decreasing), `+Inf` present and last, equal to the _count sample,
    with a _sum sample alongside
  - the required families for the control-plane dashboards are present

JSON snapshot:
  - parses, carries instance/scrape_seq/gauges/total/delta/classes, and the
    per-class book has one entry per QoS class with consistent quantiles

Usage:
  tools/check_metrics.py SESSION_LOG [--require-json]
  tools/check_metrics.py --self-test
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys

PROM_BEGIN = "=== metrics prometheus begin ==="
PROM_END = "=== metrics prometheus end ==="
JSON_BEGIN = "=== metrics json begin ==="
JSON_END = "=== metrics json end ==="

REQUIRED_FAMILIES = [
    "ftcs_calls_submitted_total",
    "ftcs_calls_admitted_total",
    "ftcs_rejects_total",
    "ftcs_scrape_delta",
    "ftcs_active_calls",
    "ftcs_pending_requests",
    "ftcs_failed_switches",
    "ftcs_stuck_switches",
    "ftcs_shorted",
    "ftcs_scrape_seq",
    "ftcs_shorts_raised_total",
    "ftcs_class_served_total",
    "ftcs_class_sla_violations_total",
    "ftcs_setup_latency_seconds",
    "ftcs_setup_latency_p50_seconds",
    "ftcs_setup_latency_p99_seconds",
    # Hitless-growth families: growths applied, live calls remapped through
    # the old->new id map, and calls killed by growth (0 by design — the
    # counter exists so the invariant is observable on every scrape).
    "ftcs_growths_total",
    "ftcs_growth_calls_remapped_total",
    "ftcs_growth_calls_killed_total",
]

# Federation families: the default daemon serves a multi-exchange
# federation, so trunk books and half-call gauges must be on every scrape.
# A solo (single-exchange) daemon legitimately has none of these —
# --solo drops them from the requirement.
FEDERATION_FAMILIES = [
    "ftcs_intra_calls_total",
    "ftcs_inter_calls_total",
    "ftcs_half_calls_routed_total",
    "ftcs_trunk_claims_total",
    "ftcs_trunk_rejects_total",
    "ftcs_trunk_faults_total",
    "ftcs_shards",
    "ftcs_half_calls_active",
    "ftcs_trunk_group_capacity",
    "ftcs_trunk_group_usable",
    "ftcs_trunk_group_occupancy",
    "ftcs_trunk_group_claims_total",
]
REQUIRED_FAMILIES += FEDERATION_FAMILIES

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")
LABEL_RE = re.compile(r'(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>[^"]*)"')


def extract_block(text: str, begin: str, end: str) -> str | None:
    """Returns the LAST begin/end-delimited block, or None."""
    start = text.rfind(begin)
    if start < 0:
        return None
    start += len(begin)
    stop = text.find(end, start)
    if stop < 0:
        return None
    return text[start:stop].strip("\n")


def base_family(name: str) -> str:
    """Histogram samples belong to the family their # TYPE line declares."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_prometheus(text: str,
                     required: list[str] | None = None) -> list[str]:
    """Returns a list of violations (empty = clean)."""
    if required is None:
        required = REQUIRED_FAMILIES
    errors: list[str] = []
    declared: dict[str, str] = {}  # family -> kind
    # histogram series: (family, labels-minus-le) -> [(le, count)]
    buckets: dict[tuple[str, tuple], list[tuple[float, float]]] = {}
    sums: set[tuple[str, tuple]] = set()
    counts: dict[tuple[str, tuple], float] = {}
    seen_families: set[str] = set()

    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line: {line}")
                continue
            declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line}")
            continue
        name = m.group("name")
        family = base_family(name)
        if family not in declared and name not in declared:
            errors.append(f"line {lineno}: sample '{name}' has no # TYPE "
                          "declaration")
            continue
        # A family whose TYPE is not histogram keeps its full sample name
        # (ftcs_shorts_raised_total is a counter, not ftcs_shorts_raised's
        # _total sample).
        if name in declared:
            family = name
        seen_families.add(family)
        labels = dict(LABEL_RE.findall(m.group("labels") or ""))
        raw = m.group("value")
        try:
            value = float("inf") if raw == "+Inf" else float(raw)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value '{raw}'")
            continue
        if not math.isfinite(value) and raw != "+Inf":
            errors.append(f"line {lineno}: non-finite value '{raw}'")
            continue

        if declared.get(family) == "histogram":
            key = (family,
                   tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le")))
            if name.endswith("_bucket"):
                le_raw = labels.get("le")
                if le_raw is None:
                    errors.append(f"line {lineno}: histogram bucket without "
                                  "an 'le' label")
                    continue
                le = float("inf") if le_raw == "+Inf" else float(le_raw)
                buckets.setdefault(key, []).append((le, value))
            elif name.endswith("_sum"):
                sums.add(key)
            elif name.endswith("_count"):
                counts[key] = value

    for key, series in buckets.items():
        family, labels = key
        tag = f"{family}{dict(labels)}"
        les = [le for le, _ in series]
        if les != sorted(les):
            errors.append(f"{tag}: 'le' bounds not ascending")
        if not les or not math.isinf(les[-1]):
            errors.append(f"{tag}: no trailing +Inf bucket")
        vals = [v for _, v in series]
        if any(b > a for a, b in zip(vals[1:], vals[:-1])):
            errors.append(f"{tag}: bucket counts not cumulative")
        if key not in sums:
            errors.append(f"{tag}: missing _sum sample")
        if key not in counts:
            errors.append(f"{tag}: missing _count sample")
        elif vals and math.isinf(les[-1]) and vals[-1] != counts[key]:
            errors.append(f"{tag}: +Inf bucket {vals[-1]:g} != _count "
                          f"{counts[key]:g}")

    for family in required:
        if family not in seen_families:
            errors.append(f"required family '{family}' absent")
    return errors


def check_json(text: str) -> list[str]:
    errors: list[str] = []
    try:
        doc = json.loads(text)
    except ValueError as exc:
        return [f"JSON snapshot does not parse: {exc}"]
    for key in ("instance", "scrape_seq", "gauges", "total", "delta",
                "classes"):
        if key not in doc:
            errors.append(f"JSON snapshot missing '{key}'")
    for cls in doc.get("classes", []):
        if cls.get("count", 0) > 0 and \
                cls.get("p50_seconds", 0) > cls.get("p99_seconds", 0):
            errors.append(f"class {cls.get('class')}: p50 > p99")
    gauges = doc.get("gauges", {})
    for g in ("active_calls", "pending", "failed_switches", "shorted"):
        if g not in gauges:
            errors.append(f"JSON gauges missing '{g}'")
    return errors


def self_test() -> int:
    # A minimal exposition carrying every required family, plus one
    # histogram with a well-formed bucket ladder.
    good = ""
    for fam in REQUIRED_FAMILIES:
        if fam == "ftcs_setup_latency_seconds":
            good += "# TYPE ftcs_setup_latency_seconds histogram\n"
            good += ('ftcs_setup_latency_seconds_bucket{class="0",le="0.5"}'
                     ' 1\n')
            good += ('ftcs_setup_latency_seconds_bucket{class="0",le="+Inf"}'
                     ' 2\n')
            good += 'ftcs_setup_latency_seconds_sum{class="0"} 0.25\n'
            good += 'ftcs_setup_latency_seconds_count{class="0"} 2\n'
        elif fam == "ftcs_rejects_total":
            good += "# TYPE ftcs_rejects_total counter\n"
            good += 'ftcs_rejects_total{reason="rejected_no_path"} 3\n'
        else:
            kind = "gauge" if "latency_p" in fam or fam in (
                "ftcs_active_calls", "ftcs_pending_requests",
                "ftcs_failed_switches", "ftcs_stuck_switches", "ftcs_shorted",
                "ftcs_scrape_delta", "ftcs_shards", "ftcs_half_calls_active",
                "ftcs_trunk_group_capacity", "ftcs_trunk_group_usable",
                "ftcs_trunk_group_occupancy") else "counter"
            good += f"# TYPE {fam} {kind}\n{fam}{{exchange=\"t\"}} 4\n"
    assert check_prometheus(good) == [], check_prometheus(good)

    # A scrape without the federation trunk book is rejected — unless the
    # requirement is the --solo set, which still demands the growth
    # families (hitlessness must be observable on a lone exchange too).
    no_trunks = good
    for fam in FEDERATION_FAMILIES:
        kind = "gauge" if fam in (
            "ftcs_shards", "ftcs_half_calls_active",
            "ftcs_trunk_group_capacity", "ftcs_trunk_group_usable",
            "ftcs_trunk_group_occupancy") else "counter"
        no_trunks = no_trunks.replace(
            f"# TYPE {fam} {kind}\n{fam}{{exchange=\"t\"}} 4\n", "")
    assert any("ftcs_trunk_group_occupancy" in e
               for e in check_prometheus(no_trunks))
    solo_required = [f for f in REQUIRED_FAMILIES
                     if f not in FEDERATION_FAMILIES]
    assert check_prometheus(no_trunks, solo_required) == [], \
        check_prometheus(no_trunks, solo_required)
    no_growth = no_trunks.replace(
        "# TYPE ftcs_growths_total counter\n"
        'ftcs_growths_total{exchange="t"} 4\n', "")
    assert any("ftcs_growths_total" in e
               for e in check_prometheus(no_growth, solo_required))

    # Each corruption is caught: undeclared family, non-cumulative buckets,
    # missing +Inf, count mismatch, descending le.
    assert any("no # TYPE" in e
               for e in check_prometheus(good + "ftcs_rogue_total 1\n"))
    bad_cum = good.replace(
        'ftcs_setup_latency_seconds_bucket{class="0",le="0.5"} 1',
        'ftcs_setup_latency_seconds_bucket{class="0",le="0.5"} 5')
    assert any("not cumulative" in e for e in check_prometheus(bad_cum))
    bad_inf = good.replace(
        'ftcs_setup_latency_seconds_bucket{class="0",le="+Inf"} 2\n', "")
    assert any("+Inf" in e for e in check_prometheus(bad_inf))
    bad_count = good.replace(
        'ftcs_setup_latency_seconds_count{class="0"} 2',
        'ftcs_setup_latency_seconds_count{class="0"} 7')
    assert any("!= _count" in e for e in check_prometheus(bad_count))

    good_json = json.dumps({
        "instance": "t", "scrape_seq": 1,
        "gauges": {"active_calls": 0, "pending": 0, "failed_switches": 0,
                   "stuck_switches": 0, "shorted": False},
        "total": {}, "delta": {},
        "classes": [{"class": 0, "count": 2, "p50_seconds": 0.1,
                     "p99_seconds": 0.2}],
    })
    assert check_json(good_json) == [], check_json(good_json)
    assert any("missing 'classes'" in e for e in check_json("{}"))
    assert any("does not parse" in e for e in check_json("nope"))

    # Marker extraction returns the LAST block.
    log = (f"noise\n{PROM_BEGIN}\nold\n{PROM_END}\n"
           f"{PROM_BEGIN}\n{good}\n{PROM_END}\ntrailing")
    assert extract_block(log, PROM_BEGIN, PROM_END) == good.strip("\n")

    print("check_metrics: self-test OK")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("log", nargs="?", help="captured daemon session log "
                    "(or raw Prometheus text)")
    ap.add_argument("--require-json", action="store_true",
                    help="also require a JSON snapshot block in the log")
    ap.add_argument("--solo", action="store_true",
                    help="single-exchange session: do not require the "
                         "federation/trunk families")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if not args.log:
        ap.error("a session log is required (or use --self-test)")

    with open(args.log, "r", encoding="utf-8") as fh:
        text = fh.read()

    prom = extract_block(text, PROM_BEGIN, PROM_END)
    if prom is None:
        prom = text  # raw exposition file
    required = [f for f in REQUIRED_FAMILIES
                if f not in FEDERATION_FAMILIES] if args.solo \
        else REQUIRED_FAMILIES
    errors = check_prometheus(prom, required)

    js = extract_block(text, JSON_BEGIN, JSON_END)
    if js is not None:
        errors += check_json(js)
    elif args.require_json:
        errors.append("no JSON snapshot block found in the session log")

    for e in errors:
        print(f"check_metrics: FAIL — {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"check_metrics: OK (prometheus"
          f"{' + json' if js is not None else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
