// Telephone exchange: the Clos [Cl] motivation — circuit-switched voice
// traffic on an exchange whose switches age and fail.
//
//   $ ./telephone_exchange [years]
//
// Scenario: a 16-line exchange built three ways — a strict-sense Clos, a
// Beneš, and the paper's fault-tolerant 𝒩̂ — operated for `years` of
// simulated service. Metallic-contact switches accumulate failures at
// ~lambda per switch-year (both stuck-open and stuck-closed). Each year we
// re-sample the cumulative fault state and run a day of Poisson call
// traffic, reporting grade of service (blocking probability).
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "fault/fault_instance.hpp"
#include "ftcs/ft_network.hpp"
#include "ftcs/traffic.hpp"
#include "networks/benes.hpp"
#include "networks/clos.hpp"
#include "svc/exchange.hpp"
#include "util/table.hpp"

namespace {

struct Office {
  std::string name;
  const ftcs::graph::Network* net;
};

// One day of service: the office is a svc::Exchange owning the year's
// cumulative fault mask; the traffic simulation serves calls through it.
ftcs::core::TrafficReport run_day(const ftcs::graph::Network& net,
                                  const ftcs::fault::FaultModel& wear,
                                  std::uint64_t seed) {
  ftcs::fault::FaultInstance inst(net, wear, seed);
  ftcs::svc::ExchangeConfig cfg;
  cfg.blocked = inst.faulty_non_terminal_mask();
  cfg.blocked_edges = inst.failed_edge_mask();
  ftcs::svc::Exchange exchange(net, std::move(cfg));
  ftcs::core::TrafficParams p;
  p.arrival_rate = 4.0;   // calls per minute across the exchange
  p.mean_holding = 3.0;   // minutes
  p.sim_time = 1440;      // one day
  p.seed = seed ^ 0xD417;
  return simulate_traffic(exchange, p);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftcs;
  const int years = argc > 1 ? std::atoi(argv[1]) : 12;
  const double lambda = 2e-4;  // per-switch failure probability per year

  const auto clos = networks::build_clos(networks::clos_nonblocking_for(16));
  const networks::Benes benes(4);
  const auto ft = core::build_ft_network(core::FtParams::sim(2, 8, 6, 1, 5));
  const Office exchanges[] = {
      {"clos-strict (" + std::to_string(clos.g.edge_count()) + " sw)", &clos},
      {"benes (" + std::to_string(benes.network().g.edge_count()) + " sw)",
       &benes.network()},
      {"ftcs-nhat (" + std::to_string(ft.net.g.edge_count()) + " sw)", &ft.net},
  };

  std::cout << "== telephone exchange: grade of service over equipment life ==\n"
            << "16 lines, " << lambda
            << " switch failures/switch-year, 4 calls/min, 3 min holding\n\n";
  util::Table t({"year", "cumulative eps", exchanges[0].name, exchanges[1].name,
                 exchanges[2].name});
  for (int year = 0; year <= years; year += 3) {
    const double eps = 1.0 - std::pow(1.0 - lambda, year);
    std::vector<std::string> row{std::to_string(year), util::format_sig(eps)};
    for (const auto& ex : exchanges) {
      const auto report =
          run_day(*ex.net, fault::FaultModel::symmetric(eps / 2), 1000 + year);
      row.push_back(util::format_sig(report.blocking_probability()) + " (" +
                    std::to_string(report.blocked) + "/" +
                    std::to_string(report.offered) + ")");
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "\nReading: blocking probability (blocked/offered calls). The Beneš\n"
               "blocks even when new — it is rearrangeable, not strictly\n"
               "nonblocking, and live calls cannot be rearranged. The strict Clos\n"
               "starts clean but degrades as switches accumulate failures. The FT\n"
               "exchange holds zero blocking deep into the equipment's life — the\n"
               "operational payoff of Theorem 2's guarantee, bought with the\n"
               "Theta(n log^2 n) switch budget.\n";
  return 0;
}
