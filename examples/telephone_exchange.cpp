// Telephone exchange: the Clos [Cl] motivation — circuit-switched voice
// traffic on an exchange whose switches age and fail.
//
//   $ ./telephone_exchange [years] [sessions]
//
// Scenario: a 16-line exchange built three ways — a strict-sense Clos, a
// Beneš, and the paper's fault-tolerant 𝒩̂ — operated for `years` of
// simulated service. Metallic-contact switches accumulate failures at
// ~lambda per switch-year (both stuck-open and stuck-closed). Each year we
// re-sample the cumulative fault state and run a day of Poisson call
// traffic, reporting grade of service (blocking probability).
//
// The run ends with a mid-life OUTAGE EPISODE on the FT exchange: one day
// of traffic during which switches fail and crews repair them WHILE CALLS
// ARE LIVE (the runtime fault plane: Exchange::inject/repair driven by a
// fault::FaultSchedule). Calls crossing a dying switch are torn down with
// the typed killed_by_fault outcome and immediately re-admitted through
// the batched plane; the episode reports killed vs rerouted vs dropped.
// With `sessions` > 1 the episode serves traffic through the batched
// multi-session admission plane instead of the single immediate session.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "fault/fault_instance.hpp"
#include "fault/schedule.hpp"
#include "ftcs/ft_network.hpp"
#include "ftcs/traffic.hpp"
#include "networks/benes.hpp"
#include "networks/clos.hpp"
#include "svc/exchange.hpp"
#include "util/table.hpp"

namespace {

struct Office {
  std::string name;
  const ftcs::graph::Network* net;
};

// One day of service: the office is a svc::Exchange owning the year's
// cumulative fault mask; the traffic simulation serves calls through it.
ftcs::core::TrafficReport run_day(const ftcs::graph::Network& net,
                                  const ftcs::fault::FaultModel& wear,
                                  std::uint64_t seed) {
  ftcs::fault::FaultInstance inst(net, wear, seed);
  ftcs::svc::ExchangeConfig cfg;
  cfg.blocked = inst.faulty_non_terminal_mask();
  cfg.blocked_edges = inst.failed_edge_mask();
  ftcs::svc::Exchange exchange(net, std::move(cfg));
  ftcs::core::TrafficParams p;
  p.arrival_rate = 4.0;   // calls per minute across the exchange
  p.mean_holding = 3.0;   // minutes
  p.sim_time = 1440;      // one day
  p.seed = seed ^ 0xD417;
  return simulate_traffic(exchange, p);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftcs;
  const int years = argc > 1 ? std::atoi(argv[1]) : 12;
  const int sessions_arg = argc > 2 ? std::atoi(argv[2]) : 1;
  const unsigned sessions = sessions_arg > 0 ? static_cast<unsigned>(sessions_arg) : 1;
  const double lambda = 2e-4;  // per-switch failure probability per year

  const auto clos = networks::build_clos(networks::clos_nonblocking_for(16));
  const networks::Benes benes(4);
  const auto ft = core::build_ft_network(core::FtParams::sim(2, 8, 6, 1, 5));
  const Office exchanges[] = {
      {"clos-strict (" + std::to_string(clos.g.edge_count()) + " sw)", &clos},
      {"benes (" + std::to_string(benes.network().g.edge_count()) + " sw)",
       &benes.network()},
      {"ftcs-nhat (" + std::to_string(ft.net.g.edge_count()) + " sw)", &ft.net},
  };

  std::cout << "== telephone exchange: grade of service over equipment life ==\n"
            << "16 lines, " << lambda
            << " switch failures/switch-year, 4 calls/min, 3 min holding\n\n";
  util::Table t({"year", "cumulative eps", exchanges[0].name, exchanges[1].name,
                 exchanges[2].name});
  for (int year = 0; year <= years; year += 3) {
    const double eps = 1.0 - std::pow(1.0 - lambda, year);
    std::vector<std::string> row{std::to_string(year), util::format_sig(eps)};
    for (const auto& ex : exchanges) {
      const auto report =
          run_day(*ex.net, fault::FaultModel::symmetric(eps / 2), 1000 + year);
      row.push_back(util::format_sig(report.blocking_probability()) + " (" +
                    std::to_string(report.blocked) + "/" +
                    std::to_string(report.offered) + ")");
    }
    t.add_row(row);
  }
  t.print(std::cout);

  // ------------------------------------------------------- outage episode
  // Mid-life, the FT exchange has a bad day: switches keep failing at
  // ~200x the wear rate (a cable cut, a lightning storm) and repair crews
  // turn them around in ~2 simulated hours — all while the day's calls are
  // up. The symmetric model makes the storm MIXED: half the failures are
  // OPEN (the liveness overlay routes new calls around them; calls on a
  // dying component are killed with the typed killed_by_fault outcome and
  // immediately re-admitted through the batched plane) and half are
  // STUCK-ON (the contact welds conducting: live calls keep their paths,
  // the hop becomes a free forced ride — runtime contraction — and the
  // crew's repair can sever a call that crossed the weld backwards).
  const int outage_year = years / 2;
  const double worn_eps =
      (1.0 - std::pow(1.0 - lambda, outage_year)) / 2;  // cumulative wear
  fault::FaultInstance worn(ft.net, fault::FaultModel::symmetric(worn_eps),
                            9000 + outage_year);
  svc::ExchangeConfig cfg;
  cfg.blocked = worn.faulty_non_terminal_mask();
  cfg.blocked_edges = worn.failed_edge_mask();
  if (sessions > 1) {
    cfg.backend = svc::Backend::kConcurrent;
    cfg.sessions = sessions;
  }
  svc::Exchange exchange(ft.net, std::move(cfg));
  // ~0.05 failures per switch over the day (a couple hundred outages on
  // this exchange), two-hour mean repair: a violent but survivable storm.
  const double storm_rate_per_minute = 0.05 / 1440.0;
  const auto storm = fault::FaultSchedule::from_model(
      fault::FaultModel::symmetric(storm_rate_per_minute / 2),
      ft.net.g.edge_count(),
      /*horizon=*/1440.0, /*mean_repair=*/120.0, /*seed=*/4242);
  core::TrafficParams storm_day;
  storm_day.arrival_rate = 4.0;
  storm_day.mean_holding = 3.0;
  storm_day.sim_time = 1440;
  storm_day.seed = 0xBAD0DA1;
  storm_day.faults = &storm;
  if (sessions > 1) storm_day.epoch_interval = 0.25;  // batched, all sessions
  const auto report = simulate_traffic(exchange, storm_day);

  std::cout << "\n== outage episode: year " << outage_year
            << ", ftcs-nhat, one day of live switch failures ==\n"
            << (sessions > 1
                    ? "batched admission plane, " + std::to_string(sessions) +
                          " sessions\n"
                    : std::string("immediate plane, 1 session\n"))
            << "  open failures injected:    " << report.faults_injected
            << "\n"
            << "  stuck-on welds injected:   " << report.stuck_injected
            << " (live contraction: calls ride the weld for free)\n"
            << "  switches repaired:         " << report.faults_repaired
            << "\n"
            << "  calls offered/carried:     " << report.offered << "/"
            << report.carried << "\n"
            << "  " << svc::to_string(svc::RejectReason::kFaulted)
            << ":           " << report.killed_by_fault << "\n"
            << "    ...rerouted on a detour: " << report.reroute_succeeded
            << "\n"
            << "    ...dropped (no path):    " << report.reroute_failed << "\n"
            << "  " << svc::to_string(svc::RejectReason::kNoPath) << ":        "
            << report.service.router.rejected_no_path
            << " (degraded topology, incl. failed reroutes)\n";

  std::cout << "\nReading: blocking probability (blocked/offered calls). The Beneš\n"
               "blocks even when new — it is rearrangeable, not strictly\n"
               "nonblocking, and live calls cannot be rearranged. The strict Clos\n"
               "starts clean but degrades as switches accumulate failures. The FT\n"
               "exchange holds zero blocking deep into the equipment's life — the\n"
               "operational payoff of Theorem 2's guarantee, bought with the\n"
               "Theta(n log^2 n) switch budget.\n";
  return 0;
}
