// Telephone exchange: the Clos [Cl] motivation — circuit-switched voice
// traffic on an exchange whose switches age and fail.
//
//   $ ./telephone_exchange [years] [sessions]
//
// Scenario: a 16-line exchange built three ways — a strict-sense Clos, a
// Beneš, and the paper's fault-tolerant 𝒩̂ — operated for `years` of
// simulated service. Metallic-contact switches accumulate failures at
// ~lambda per switch-year (both stuck-open and stuck-closed). Each year we
// re-sample the cumulative fault state and run a day of Poisson call
// traffic, reporting grade of service (blocking probability).
//
// The run ends with a mid-life OUTAGE EPISODE on the FT exchange: one day
// of traffic during which switches fail and crews repair them WHILE CALLS
// ARE LIVE (the runtime fault plane: Exchange::inject/repair driven by a
// fault::FaultSchedule). Calls crossing a dying switch are torn down with
// the typed killed_by_fault outcome and immediately re-admitted through
// the batched plane; the episode reports killed vs rerouted vs dropped.
// With `sessions` > 1 the episode serves traffic through the batched
// multi-session admission plane instead of the single immediate session.
//
// After the outage, a GROWTH EPISODE: a fully loaded 32-line Cantor
// exchange is doubled to 64 lines while every call is up
// (networks::grow_cantor builds the append-only superset topology;
// Exchange::grow remaps the live calls through the old->new id map under
// a sub-millisecond quiesce — calls_killed_by_growth stays 0 by design).
//
//   $ ./telephone_exchange --daemon [sessions]
//
// Daemon mode: a two-shard FEDERATION of FT exchanges runs live — a serving
// thread pumps mixed intra-/inter-shard call churn through the batched plane
// epoch after epoch, inter-shard calls riding trunk groups as two half-calls
// — while THIS process's stdin is the operator console, bridged to the
// serving thread by ops::ControlPlane's command queue. Line protocol (one
// command per line):
//   inject E [S] | weld E [S] | repair E [S]
//                                  fault plane on switch (edge id) E of
//                                  shard S (default 0)
//   trunks                         per-trunk-group occupancy/health book
//   tfault G L | trepair G L       fail/restore line L of trunk group G
//                                  (an edge fault in the federation graph)
//   grow N                         hitless growth (federated plane: typed
//                                  unsupported until ROADMAP item 2c)
//   query                          health gauges + headline counters
//   snapshot prom|json             metrics scrape, fenced by marker lines
//                                  (tools/check_metrics.py validates them)
//   quiesce                        drain the admission queue to empty
//   quit                           stop serving and exit
// Acks print as `ack <command> ...` lines; the session transcript is the
// CI artifact.
//
//   $ ./telephone_exchange --daemon-solo [sessions]
//
// Solo daemon: one Cantor exchange ("cantor-32-m5") instead of the
// federation, same stdin console (the trunk verbs ack kUnsupported). Here
// `grow` is LIVE: the default planner doubles the exchange to 64 lines
// mid-churn and the ack reports switches added, calls remapped, calls
// killed (always 0) and the quiesce wall time.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_instance.hpp"
#include "fault/schedule.hpp"
#include "ftcs/ft_network.hpp"
#include "ftcs/traffic.hpp"
#include "networks/benes.hpp"
#include "networks/cantor.hpp"
#include "networks/clos.hpp"
#include "ops/command_queue.hpp"
#include "ops/control.hpp"
#include "svc/exchange.hpp"
#include "svc/federation.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace {

struct Office {
  std::string name;
  const ftcs::graph::Network* net;
};

// One day of service: the office is a svc::Exchange owning the year's
// cumulative fault mask; the traffic simulation serves calls through it.
ftcs::core::TrafficReport run_day(const ftcs::graph::Network& net,
                                  const ftcs::fault::FaultModel& wear,
                                  std::uint64_t seed) {
  ftcs::fault::FaultInstance inst(net, wear, seed);
  ftcs::svc::ExchangeConfig cfg;
  cfg.blocked = inst.faulty_non_terminal_mask();
  cfg.blocked_edges = inst.failed_edge_mask();
  ftcs::svc::Exchange exchange(net, std::move(cfg));
  ftcs::core::TrafficParams p;
  p.arrival_rate = 4.0;   // calls per minute across the exchange
  p.mean_holding = 3.0;   // minutes
  p.sim_time = 1440;      // one day
  p.seed = seed ^ 0xD417;
  return simulate_traffic(exchange, p);
}

// ------------------------------------------------------------- daemon mode

/// The serving loop: owns every member session (the drain contract), so it
/// is the one thread that runs admission epochs, applies operator commands
/// (ControlPlane::pump between epochs), and hangs up expiring calls.
/// Connected handles arrive via callback — intra-shard callbacks fire on
/// member pool threads, inter-shard ones on this thread — so the landing
/// vector is mutex-protected and drained here each epoch.
void serve_loop(ftcs::svc::Federation& fed, ftcs::ops::ControlPlane& control,
                std::atomic<bool>& stop) {
  namespace svc = ftcs::svc;
  const auto n = static_cast<std::uint32_t>(fed.input_count());
  ftcs::util::Xoshiro256 rng(0xDA3E0);
  std::mutex mu;
  std::vector<svc::FedCallId> connected;
  const auto on_done = [&](const svc::FedOutcome& o) {
    if (o.connected()) {
      const std::lock_guard<std::mutex> lk(mu);
      connected.push_back(o.id);
    }
  };
  std::vector<svc::FedCallId> held;
  while (!stop.load(std::memory_order_acquire)) {
    control.pump();  // operator commands land at the epoch boundary
    for (int a = 0; a < 4; ++a) {
      svc::CallRequest req;
      req.input = static_cast<std::uint32_t>(rng() % n);
      req.output = static_cast<std::uint32_t>(rng() % n);
      req.priority = static_cast<std::uint8_t>(rng() & 3u);
      fed.submit(req, on_done);
    }
    fed.drain();
    {
      const std::lock_guard<std::mutex> lk(mu);
      held.insert(held.end(), connected.begin(), connected.end());
      connected.clear();
    }
    std::size_t drop = held.size() / 4;  // ~1/4 of held calls hang up/epoch
    while (drop-- > 0 && !held.empty()) {
      const auto idx = rng() % held.size();
      // A call a trunk fault already reaped acks kFaulted — typed, harmless.
      fed.hangup(held[idx]);
      held[idx] = held.back();
      held.pop_back();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  control.pump();  // any commands posted while we noticed `stop`
  {
    const std::lock_guard<std::mutex> lk(mu);
    held.insert(held.end(), connected.begin(), connected.end());
  }
  for (const auto id : held) fed.hangup(id);
}

void print_ack(const ftcs::ops::Ack& a) {
  namespace ops = ftcs::ops;
  std::ostringstream line;
  line << "ack " << ops::to_string(a.kind);
  switch (a.status) {
    case ops::AckStatus::kOk: break;
    case ops::AckStatus::kNoop: line << " noop"; break;
    case ops::AckStatus::kUnsupported: line << " unsupported"; break;
  }
  switch (a.kind) {
    case ops::CommandKind::kInject:
    case ops::CommandKind::kRepair:
    case ops::CommandKind::kTrunkFault:
    case ops::CommandKind::kTrunkRepair:
      line << " killed=" << a.calls_killed << " rerouted="
           << a.reroute_succeeded << " dropped=" << a.reroute_failed;
      if (a.alarm)
        line << (a.alarm->raised ? " SHORT-ALARM terminals " : " short-cleared terminals ")
             << a.alarm->a << "," << a.alarm->b << " trigger=" << a.alarm->trigger;
      break;
    case ops::CommandKind::kQuery:
      line << " submitted=" << a.stats.submitted << " admitted="
           << a.stats.admitted << " hangups=" << a.stats.hangups
           << " killed=" << a.stats.calls_killed_by_fault
           << " shorts=" << a.stats.shorts_raised;
      break;
    case ops::CommandKind::kQuiesce:
      line << " drained=" << a.drained;
      break;
    case ops::CommandKind::kGrow:
      if (a.growth && a.growth->applied)
        line << " switches+=" << a.growth->switches_added << " lines+="
             << a.growth->inputs_added << " remapped="
             << a.growth->calls_remapped << " killed="
             << a.growth->calls_killed << " quiesce_ms="
             << a.growth->quiesce_seconds * 1e3;
      break;
    case ops::CommandKind::kSnapshot:
    case ops::CommandKind::kTrunks:  // per-group rows print below
      break;
  }
  line << " | active=" << a.active_calls << " pending=" << a.pending
       << " down=" << a.failed_switches << " welded=" << a.stuck_switches
       << " shorted=" << (a.shorted ? 1 : 0);
  if (!a.trunks.empty()) {  // federated plane: trunk pool + half-call gauges
    unsigned occ = 0, usable = 0;
    for (const auto& g : a.trunks) {
      occ += g.occupancy;
      usable += g.usable;
    }
    line << " trunks=" << occ << "/" << usable
         << " half_calls=" << a.half_calls;
  }
  std::cout << line.str() << "\n";
  if (a.kind == ops::CommandKind::kTrunks)
    for (const auto& g : a.trunks)
      std::cout << "  group " << g.group << " " << g.from << "->" << g.to
                << " occupancy=" << g.occupancy << "/" << g.usable << "/"
                << g.capacity << " claims=" << g.claims
                << " rejects=" << g.rejects << "\n";
  if (a.kind == ops::CommandKind::kGrow && !a.text.empty())
    std::cout << "  " << a.text << "\n";
  std::cout.flush();
}

int run_daemon(unsigned sessions) {
  using namespace ftcs;
  const auto ft = core::build_ft_network(core::FtParams::sim(2, 8, 6, 1, 5));
  svc::FederationConfig cfg;
  cfg.backend = svc::Backend::kConcurrent;
  cfg.sessions = sessions;
  svc::Federation fed(ft.net, 2, cfg);
  ops::ControlPlane control(fed, "telephone-exchange");
  const auto edges = fed.member(0).network().g.edge_count();
  const auto groups = fed.trunk_group_count();

  std::cout << "telephone exchange daemon: " << fed.shards() << " shards x "
            << edges << " switches, " << groups << " trunk groups, "
            << fed.input_count() << " subscriber lines, " << sessions
            << " sessions; commands on stdin (quit to stop)\n";
  std::cout.flush();

  std::atomic<bool> stop{false};
  std::thread server([&] { serve_loop(fed, control, stop); });

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty()) continue;
    if (verb == "quit") break;
    ops::Command cmd;
    if (verb == "inject" || verb == "weld" || verb == "repair") {
      std::uint64_t edge = edges;
      in >> edge;
      if (edge >= edges) {
        std::cout << "error: " << verb << " needs a switch id < " << edges
                  << "\n";
        continue;
      }
      cmd.kind = verb == "repair" ? ops::CommandKind::kRepair
                                  : ops::CommandKind::kInject;
      cmd.event = {0.0, static_cast<graph::EdgeId>(edge),
                   verb == "weld"     ? fault::FaultEvent::Kind::kStuckOn
                   : verb == "inject" ? fault::FaultEvent::Kind::kFail
                                      : fault::FaultEvent::Kind::kRepair};
      in >> cmd.arg;  // optional target shard, default 0
      if (cmd.arg >= fed.shards()) {
        std::cout << "error: " << verb << " shard must be < " << fed.shards()
                  << "\n";
        continue;
      }
    } else if (verb == "trunks") {
      cmd.kind = ops::CommandKind::kTrunks;
    } else if (verb == "tfault" || verb == "trepair") {
      cmd.kind = verb == "tfault" ? ops::CommandKind::kTrunkFault
                                  : ops::CommandKind::kTrunkRepair;
      cmd.arg = groups;
      in >> cmd.arg >> cmd.arg2;
      if (cmd.arg >= groups ||
          cmd.arg2 >= fed.trunk_group(
                          static_cast<std::uint32_t>(cmd.arg)).capacity()) {
        std::cout << "error: " << verb << " needs GROUP < " << groups
                  << " and LINE < that group's capacity\n";
        continue;
      }
    } else if (verb == "grow") {
      cmd.kind = ops::CommandKind::kGrow;
      in >> cmd.arg;
    } else if (verb == "query") {
      cmd.kind = ops::CommandKind::kQuery;
    } else if (verb == "snapshot") {
      std::string fmt;
      in >> fmt;
      cmd.kind = ops::CommandKind::kSnapshot;
      cmd.arg = static_cast<std::uint64_t>(fmt == "json"
                                               ? ops::SnapshotFormat::kJson
                                               : ops::SnapshotFormat::kPrometheus);
    } else if (verb == "quiesce") {
      cmd.kind = ops::CommandKind::kQuiesce;
    } else {
      std::cout << "error: unknown command '" << verb
                << "' (inject|weld|repair|trunks|tfault|trepair|grow|query|"
                   "snapshot|quiesce|quit)\n";
      continue;
    }
    const ops::Ack ack = control.queue().wait(control.queue().post(cmd));
    if (ack.kind == ops::CommandKind::kSnapshot) {
      const bool is_json =
          static_cast<ops::SnapshotFormat>(cmd.arg) == ops::SnapshotFormat::kJson;
      std::cout << (is_json ? "=== metrics json begin ==="
                            : "=== metrics prometheus begin ===")
                << "\n"
                << ack.text
                << (ack.text.empty() || ack.text.back() == '\n' ? "" : "\n")
                << (is_json ? "=== metrics json end ==="
                            : "=== metrics prometheus end ===")
                << "\n";
      std::cout.flush();
    } else {
      print_ack(ack);
    }
  }
  stop.store(true, std::memory_order_release);
  server.join();
  fed.drain_all();
  const svc::FederationStats st = fed.stats();
  std::cout << "daemon done: " << st.members.submitted << " submitted ("
            << st.intra_calls << " intra, " << st.inter_calls << " inter), "
            << st.members.admitted << " admitted, " << st.members.hangups
            << " hangups, " << st.trunks.claims << " trunk claims, "
            << st.members.calls_killed_by_fault +
                   st.calls_killed_by_trunk_fault
            << " killed by faults, " << st.members.shorts_raised
            << " short alarms\n";
  return 0;
}

// -------------------------------------------------------- solo daemon mode

/// Single-exchange serving loop, same drain contract as the federated one.
/// The subscriber-line count is re-read every epoch: a kGrow command pumped
/// at the boundary doubles it, and the very next epoch's churn dials the
/// new lines.
void solo_serve_loop(ftcs::svc::Exchange& ex, ftcs::ops::ControlPlane& control,
                     std::atomic<bool>& stop) {
  namespace svc = ftcs::svc;
  ftcs::util::Xoshiro256 rng(0x50701);
  std::mutex mu;
  std::vector<svc::CallId> connected;
  const auto on_done = [&](const svc::Outcome& o) {
    if (o.connected()) {
      const std::lock_guard<std::mutex> lk(mu);
      connected.push_back(o.id);
    }
  };
  std::vector<svc::CallId> held;
  std::uint64_t tag = 1;
  while (!stop.load(std::memory_order_acquire)) {
    control.pump();  // operator commands (including grow) land here
    const auto n = static_cast<std::uint32_t>(ex.input_count());
    for (int a = 0; a < 4; ++a) {
      svc::CallRequest req;
      req.input = static_cast<std::uint32_t>(rng() % n);
      req.output = static_cast<std::uint32_t>(rng() % n);
      req.priority = static_cast<std::uint8_t>(rng() & 3u);
      req.tag = tag++;
      ex.submit(req, on_done);
    }
    ex.drain_all();
    {
      const std::lock_guard<std::mutex> lk(mu);
      held.insert(held.end(), connected.begin(), connected.end());
      connected.clear();
    }
    std::size_t drop = held.size() / 4;
    while (drop-- > 0 && !held.empty()) {
      const auto idx = rng() % held.size();
      ex.hangup(held[idx]);  // handles survive growth: remapped, not stale
      held[idx] = held.back();
      held.pop_back();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  control.pump();
  {
    const std::lock_guard<std::mutex> lk(mu);
    held.insert(held.end(), connected.begin(), connected.end());
  }
  for (const auto id : held) ex.hangup(id);
}

int run_daemon_solo(unsigned sessions) {
  using namespace ftcs;
  // Kept alive for the Exchange's borrowed pre-growth phase; after a grow
  // the exchange owns its (grown) network internally.
  const auto cantor = networks::build_cantor({5, 0});  // "cantor-32-m5"
  svc::ExchangeConfig cfg;
  cfg.backend = svc::Backend::kConcurrent;
  cfg.sessions = sessions;
  svc::Exchange ex(cantor, std::move(cfg));
  ops::ControlPlane control(ex, "telephone-exchange-solo");
  // REPL-side bound for switch-id validation. The serving thread owns the
  // live network, so the console tracks the edge count through grow acks
  // instead of peeking at ex.network().
  std::uint64_t edges = cantor.g.edge_count();

  std::cout << "telephone exchange daemon (solo): " << cantor.name << ", "
            << edges << " switches, " << cantor.inputs.size()
            << " subscriber lines, " << sessions
            << " sessions; commands on stdin (quit to stop; 'grow' doubles "
               "the exchange live)\n";
  std::cout.flush();

  std::atomic<bool> stop{false};
  std::thread server([&] { solo_serve_loop(ex, control, stop); });

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty()) continue;
    if (verb == "quit") break;
    ops::Command cmd;
    if (verb == "inject" || verb == "weld" || verb == "repair") {
      std::uint64_t edge = edges;
      in >> edge;
      if (edge >= edges) {
        std::cout << "error: " << verb << " needs a switch id < " << edges
                  << "\n";
        continue;
      }
      cmd.kind = verb == "repair" ? ops::CommandKind::kRepair
                                  : ops::CommandKind::kInject;
      cmd.event = {0.0, static_cast<graph::EdgeId>(edge),
                   verb == "weld"     ? fault::FaultEvent::Kind::kStuckOn
                   : verb == "inject" ? fault::FaultEvent::Kind::kFail
                                      : fault::FaultEvent::Kind::kRepair};
    } else if (verb == "grow") {
      cmd.kind = ops::CommandKind::kGrow;
      in >> cmd.arg;
    } else if (verb == "query") {
      cmd.kind = ops::CommandKind::kQuery;
    } else if (verb == "snapshot") {
      std::string fmt;
      in >> fmt;
      cmd.kind = ops::CommandKind::kSnapshot;
      cmd.arg = static_cast<std::uint64_t>(fmt == "json"
                                               ? ops::SnapshotFormat::kJson
                                               : ops::SnapshotFormat::kPrometheus);
    } else if (verb == "quiesce") {
      cmd.kind = ops::CommandKind::kQuiesce;
    } else {
      std::cout << "error: unknown command '" << verb
                << "' (inject|weld|repair|grow|query|snapshot|quiesce|quit)\n";
      continue;
    }
    const ops::Ack ack = control.queue().wait(control.queue().post(cmd));
    if (ack.kind == ops::CommandKind::kGrow && ack.growth &&
        ack.growth->applied)
      edges += ack.growth->switches_added;  // new switch ids are now valid
    if (ack.kind == ops::CommandKind::kSnapshot) {
      const bool is_json =
          static_cast<ops::SnapshotFormat>(cmd.arg) == ops::SnapshotFormat::kJson;
      std::cout << (is_json ? "=== metrics json begin ==="
                            : "=== metrics prometheus begin ===")
                << "\n"
                << ack.text
                << (ack.text.empty() || ack.text.back() == '\n' ? "" : "\n")
                << (is_json ? "=== metrics json end ==="
                            : "=== metrics prometheus end ===")
                << "\n";
      std::cout.flush();
    } else {
      print_ack(ack);
    }
  }
  stop.store(true, std::memory_order_release);
  server.join();
  ex.drain_all();
  const svc::ExchangeStats st = ex.stats();
  std::cout << "daemon done: " << st.submitted << " submitted, " << st.admitted
            << " admitted, " << st.hangups << " hangups, " << st.growths
            << " growths (" << st.calls_remapped_by_growth << " calls remapped, "
            << st.calls_killed_by_growth << " killed), "
            << st.calls_killed_by_fault << " killed by faults\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftcs;
  if (argc > 1 && std::string(argv[1]) == "--daemon") {
    const int s = argc > 2 ? std::atoi(argv[2]) : 4;
    return run_daemon(s > 0 ? static_cast<unsigned>(s) : 4u);
  }
  if (argc > 1 && std::string(argv[1]) == "--daemon-solo") {
    const int s = argc > 2 ? std::atoi(argv[2]) : 4;
    return run_daemon_solo(s > 0 ? static_cast<unsigned>(s) : 4u);
  }
  const int years = argc > 1 ? std::atoi(argv[1]) : 12;
  const int sessions_arg = argc > 2 ? std::atoi(argv[2]) : 1;
  const unsigned sessions = sessions_arg > 0 ? static_cast<unsigned>(sessions_arg) : 1;
  const double lambda = 2e-4;  // per-switch failure probability per year

  const auto clos = networks::build_clos(networks::clos_nonblocking_for(16));
  const networks::Benes benes(4);
  const auto ft = core::build_ft_network(core::FtParams::sim(2, 8, 6, 1, 5));
  const Office exchanges[] = {
      {"clos-strict (" + std::to_string(clos.g.edge_count()) + " sw)", &clos},
      {"benes (" + std::to_string(benes.network().g.edge_count()) + " sw)",
       &benes.network()},
      {"ftcs-nhat (" + std::to_string(ft.net.g.edge_count()) + " sw)", &ft.net},
  };

  std::cout << "== telephone exchange: grade of service over equipment life ==\n"
            << "16 lines, " << lambda
            << " switch failures/switch-year, 4 calls/min, 3 min holding\n\n";
  util::Table t({"year", "cumulative eps", exchanges[0].name, exchanges[1].name,
                 exchanges[2].name});
  for (int year = 0; year <= years; year += 3) {
    const double eps = 1.0 - std::pow(1.0 - lambda, year);
    std::vector<std::string> row{std::to_string(year), util::format_sig(eps)};
    for (const auto& ex : exchanges) {
      const auto report =
          run_day(*ex.net, fault::FaultModel::symmetric(eps / 2), 1000 + year);
      row.push_back(util::format_sig(report.blocking_probability()) + " (" +
                    std::to_string(report.blocked) + "/" +
                    std::to_string(report.offered) + ")");
    }
    t.add_row(row);
  }
  t.print(std::cout);

  // ------------------------------------------------------- outage episode
  // Mid-life, the FT exchange has a bad day: switches keep failing at
  // ~200x the wear rate (a cable cut, a lightning storm) and repair crews
  // turn them around in ~2 simulated hours — all while the day's calls are
  // up. The symmetric model makes the storm MIXED: half the failures are
  // OPEN (the liveness overlay routes new calls around them; calls on a
  // dying component are killed with the typed killed_by_fault outcome and
  // immediately re-admitted through the batched plane) and half are
  // STUCK-ON (the contact welds conducting: live calls keep their paths,
  // the hop becomes a free forced ride — runtime contraction — and the
  // crew's repair can sever a call that crossed the weld backwards).
  const int outage_year = years / 2;
  const double worn_eps =
      (1.0 - std::pow(1.0 - lambda, outage_year)) / 2;  // cumulative wear
  fault::FaultInstance worn(ft.net, fault::FaultModel::symmetric(worn_eps),
                            9000 + outage_year);
  svc::ExchangeConfig cfg;
  cfg.blocked = worn.faulty_non_terminal_mask();
  cfg.blocked_edges = worn.failed_edge_mask();
  if (sessions > 1) {
    cfg.backend = svc::Backend::kConcurrent;
    cfg.sessions = sessions;
  }
  svc::Exchange exchange(ft.net, std::move(cfg));
  // ~0.05 failures per switch over the day (a couple hundred outages on
  // this exchange), two-hour mean repair: a violent but survivable storm.
  const double storm_rate_per_minute = 0.05 / 1440.0;
  const auto storm = fault::FaultSchedule::from_model(
      fault::FaultModel::symmetric(storm_rate_per_minute / 2),
      ft.net.g.edge_count(),
      /*horizon=*/1440.0, /*mean_repair=*/120.0, /*seed=*/4242);
  core::TrafficParams storm_day;
  storm_day.arrival_rate = 4.0;
  storm_day.mean_holding = 3.0;
  storm_day.sim_time = 1440;
  storm_day.seed = 0xBAD0DA1;
  storm_day.faults = &storm;
  if (sessions > 1) storm_day.epoch_interval = 0.25;  // batched, all sessions
  const auto report = simulate_traffic(exchange, storm_day);

  std::cout << "\n== outage episode: year " << outage_year
            << ", ftcs-nhat, one day of live switch failures ==\n"
            << (sessions > 1
                    ? "batched admission plane, " + std::to_string(sessions) +
                          " sessions\n"
                    : std::string("immediate plane, 1 session\n"))
            << "  open failures injected:    " << report.faults_injected
            << "\n"
            << "  stuck-on welds injected:   " << report.stuck_injected
            << " (live contraction: calls ride the weld for free)\n"
            << "  switches repaired:         " << report.faults_repaired
            << "\n"
            << "  calls offered/carried:     " << report.offered << "/"
            << report.carried << "\n"
            << "  " << svc::to_string(svc::RejectReason::kFaulted)
            << ":           " << report.killed_by_fault << "\n"
            << "    ...rerouted on a detour: " << report.reroute_succeeded
            << "\n"
            << "    ...dropped (no path):    " << report.reroute_failed << "\n"
            << "  " << svc::to_string(svc::RejectReason::kNoPath) << ":        "
            << report.service.router.rejected_no_path
            << " (degraded topology, incl. failed reroutes)\n";

  // ------------------------------------------------------- growth episode
  // Demand outgrew the office: double a fully loaded Cantor exchange from
  // 32 to 64 subscriber lines with every line on a call. grow_cantor wraps
  // each Beneš plane into a Beneš(k+1) and appends one fresh plane —
  // append-only, so every pre-growth switch id survives — and
  // Exchange::grow remaps the 32 live paths through the old->new vertex
  // map under a brief quiesce. No call drops: calls_killed_by_growth is
  // exported precisely so that invariant is observable.
  const auto cantor = networks::build_cantor({5, 0});  // "cantor-32-m5"
  svc::Exchange growing(cantor);
  std::vector<svc::CallId> up;
  for (std::uint32_t i = 0; i < 32; ++i) {
    // (13i + 5) mod 32 is a permutation: all 32 pairs connect (the Cantor
    // network is strictly nonblocking), saturating every line.
    const auto o = growing.call(
        {i, static_cast<std::uint32_t>((13 * i + 5) % 32), 0, i + 1});
    if (o.connected()) up.push_back(o.id);
  }
  svc::GrowthPlan plan;
  plan.grown = networks::grow_cantor(growing.network(), {5, 0});
  const svc::TopologyOutcome gout =
      growing.apply(svc::TopologyEvent::make_grow(plan));
  const svc::GrowthReport& grown = *gout.growth;
  // The new lines are in service the instant grow returns.
  std::size_t new_line_calls = 0;
  for (std::uint32_t i = 32; i < 64; ++i)
    if (growing.call({i, static_cast<std::uint32_t>(95 - i), 0, 1000 + i})
            .connected())
      ++new_line_calls;
  for (const auto id : up) growing.hangup(id);  // remapped handles, not stale
  const std::size_t still_up = growing.active_calls();
  std::cout << "\n== growth episode: doubling a saturated Cantor exchange ==\n"
            << "  " << cantor.name << " -> " << growing.network().name
            << " with " << up.size() << "/32 lines on live calls\n"
            << "  switches added:            " << grown.switches_added
            << " (+" << grown.inputs_added << " in / +" << grown.outputs_added
            << " out lines)\n"
            << "  live calls remapped:       " << grown.calls_remapped
            << ", killed by growth: " << growing.stats().calls_killed_by_growth
            << " (hitless by design)\n"
            << "  quiesce window:            " << grown.quiesce_seconds * 1e3
            << " ms\n"
            << "  calls placed on new lines: " << new_line_calls << "/32\n"
            << "  after hanging up every pre-growth call: " << still_up
            << " calls up (the new lines' calls, on untouched paths)\n";

  std::cout << "\nReading: blocking probability (blocked/offered calls). The Beneš\n"
               "blocks even when new — it is rearrangeable, not strictly\n"
               "nonblocking, and live calls cannot be rearranged. The strict Clos\n"
               "starts clean but degrades as switches accumulate failures. The FT\n"
               "exchange holds zero blocking deep into the equipment's life — the\n"
               "operational payoff of Theorem 2's guarantee, bought with the\n"
               "Theta(n log^2 n) switch budget.\n";
  return 0;
}
