// Video switching with metallic-contact relays — the paper's §1 note that
// open/closed failures are "the two dominant failure modes ... especially
// for video switching".
//
//   $ ./video_switch
//
// Scenario: a broadcast facility routes any of 16 cameras to any of 16
// monitors through a svc::Exchange. Relays fail open (oxidized contact) 3x
// more often than closed (welded contact) — an asymmetric model, exercising
// the library's separate ε₁/ε₂ support. We sweep the facility's age and
// compare a plain crossbar against 𝒩̂, including the operationally distinct
// failure modes: "dead route" (open path impossible) vs "crosstalk" (two
// feeds shorted — catastrophic on air). Dead routes are tallied per typed
// RejectReason, using the service layer's shared spelling.
#include <cmath>
#include <iostream>
#include <map>

#include "fault/fault_instance.hpp"
#include "ftcs/ft_network.hpp"
#include "ftcs/monte_carlo.hpp"
#include "networks/crossbar.hpp"
#include "svc/exchange.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace {

using namespace ftcs;

struct Tally {
  std::size_t dead = 0, crosstalk = 0;
  std::map<svc::RejectReason, std::size_t> by_reason;
};

// One aged facility instance: route a random camera to a random monitor
// through an Exchange that owns the instance's fault mask.
void probe(const graph::Network& net, const fault::FaultModel& model,
           std::uint64_t fault_seed, std::uint64_t route_seed, Tally& tally) {
  fault::FaultInstance inst(net, model, fault_seed);
  if (inst.terminals_shorted()) ++tally.crosstalk;
  svc::ExchangeConfig cfg;
  cfg.blocked = inst.faulty_non_terminal_mask();
  cfg.blocked_edges = inst.failed_edge_mask();
  svc::Exchange exchange(net, std::move(cfg));
  util::Xoshiro256 rng(route_seed);
  const auto cam = static_cast<std::uint32_t>(rng.below(16));
  const auto mon = static_cast<std::uint32_t>(rng.below(16));
  const svc::Outcome out = exchange.call({cam, mon});
  if (!out.connected()) {
    ++tally.dead;
    ++tally.by_reason[out.reject];
  }
}

std::string reason_breakdown(const Tally& t) {
  std::string s;
  for (const auto& [reason, count] : t.by_reason) {
    if (!s.empty()) s += ", ";
    s += std::string(svc::to_string(reason)) + ": " + std::to_string(count);
  }
  return s.empty() ? "none" : s;
}

}  // namespace

int main() {
  const auto crossbar = networks::build_crossbar(16);
  const auto ft = core::build_ft_network(core::FtParams::sim(2, 8, 6, 1, 21));

  std::cout << "== video switch reliability (asymmetric relay failures) ==\n"
            << "16x16 router; open:closed failure ratio 3:1\n"
            << "crossbar: " << crossbar.g.edge_count()
            << " relays, ftcs-nhat: " << ft.net.g.edge_count() << " relays\n\n";

  util::Table t({"eps_open", "eps_closed", "xbar dead-route", "xbar crosstalk",
                 "nhat dead-route", "nhat crosstalk"});
  const std::size_t trials = 300;
  Tally xbar_total, ft_total;
  for (double base : {1e-4, 1e-3, 4e-3, 1e-2}) {
    const fault::FaultModel model{3 * base, base};
    Tally xbar, nhat;
    for (std::uint64_t s = 0; s < trials; ++s) {
      probe(crossbar, model, util::derive_seed(1, s), util::derive_seed(2, s),
            xbar);
      probe(ft.net, model, util::derive_seed(3, s), util::derive_seed(4, s),
            nhat);
    }
    const double n = static_cast<double>(trials);
    t.add(3 * base, base, xbar.dead / n, xbar.crosstalk / n, nhat.dead / n,
          nhat.crosstalk / n);
    for (const auto& [reason, count] : xbar.by_reason)
      xbar_total.by_reason[reason] += count;
    for (const auto& [reason, count] : nhat.by_reason)
      ft_total.by_reason[reason] += count;
  }
  t.print(std::cout);
  std::cout << "\nDead-route causes (typed RejectReason, all sweeps):\n"
            << "  crossbar:  " << reason_breakdown(xbar_total) << "\n"
            << "  ftcs-nhat: " << reason_breakdown(ft_total) << "\n";
  std::cout << "\nReading: on the crossbar every relay is a single point of failure\n"
               "for its camera/monitor pair (dead-route tracks 3*eps directly),\n"
               "and a welded relay crosstalks two feeds. N-hat routes around open\n"
               "failures and needs a long welded chain to crosstalk — both curves\n"
               "stay at ~0 through the sweep, at ~60x the relay budget of the\n"
               "crossbar at this size (the Theta(n log^2 n) premium shrinks\n"
               "relative to n^2 as n grows).\n";
  return 0;
}
