// Video switching with metallic-contact relays — the paper's §1 note that
// open/closed failures are "the two dominant failure modes ... especially
// for video switching".
//
//   $ ./video_switch
//
// Scenario: a broadcast facility routes any of 16 cameras to any of 16
// monitors. Relays fail open (oxidized contact) 3x more often than closed
// (welded contact) — an asymmetric model, exercising the library's separate
// ε₁/ε₂ support. We sweep the facility's age and compare a plain crossbar
// against 𝒩̂, including the operationally distinct failure modes:
// "dead route" (open path impossible) vs "crosstalk" (two feeds shorted —
// catastrophic on air).
#include <cmath>
#include <iostream>

#include "fault/fault_instance.hpp"
#include "ftcs/ft_network.hpp"
#include "ftcs/monte_carlo.hpp"
#include "ftcs/router.hpp"
#include "networks/crossbar.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftcs;
  const auto crossbar = networks::build_crossbar(16);
  const auto ft = core::build_ft_network(core::FtParams::sim(2, 8, 6, 1, 21));

  std::cout << "== video switch reliability (asymmetric relay failures) ==\n"
            << "16x16 router; open:closed failure ratio 3:1\n"
            << "crossbar: " << crossbar.g.edge_count()
            << " relays, ftcs-nhat: " << ft.net.g.edge_count() << " relays\n\n";

  util::Table t({"eps_open", "eps_closed", "xbar dead-route", "xbar crosstalk",
                 "nhat dead-route", "nhat crosstalk"});
  const std::size_t trials = 300;
  for (double base : {1e-4, 1e-3, 4e-3, 1e-2}) {
    const fault::FaultModel model{3 * base, base};
    std::size_t xbar_dead = 0, xbar_cross = 0, ft_dead = 0, ft_cross = 0;
    for (std::uint64_t s = 0; s < trials; ++s) {
      {
        fault::FaultInstance inst(crossbar, model, util::derive_seed(1, s));
        if (inst.terminals_shorted()) ++xbar_cross;
        // Dead route: some camera/monitor pair unroutable (crossbar: its
        // dedicated relay failed).
        core::GreedyRouter router(crossbar, inst.faulty_non_terminal_mask(),
                                  inst.failed_edge_mask());
        util::Xoshiro256 rng(util::derive_seed(2, s));
        const auto cam = static_cast<std::uint32_t>(rng.below(16));
        const auto mon = static_cast<std::uint32_t>(rng.below(16));
        if (router.connect(cam, mon) == core::GreedyRouter::kNoCall) ++xbar_dead;
      }
      {
        fault::FaultInstance inst(ft.net, model, util::derive_seed(3, s));
        if (inst.terminals_shorted()) ++ft_cross;
        core::GreedyRouter router(ft.net, inst.faulty_non_terminal_mask(),
                                  inst.failed_edge_mask());
        util::Xoshiro256 rng(util::derive_seed(4, s));
        const auto cam = static_cast<std::uint32_t>(rng.below(16));
        const auto mon = static_cast<std::uint32_t>(rng.below(16));
        if (router.connect(cam, mon) == core::GreedyRouter::kNoCall) ++ft_dead;
      }
    }
    const double n = static_cast<double>(trials);
    t.add(3 * base, base, xbar_dead / n, xbar_cross / n, ft_dead / n,
          ft_cross / n);
  }
  t.print(std::cout);
  std::cout << "\nReading: on the crossbar every relay is a single point of failure\n"
               "for its camera/monitor pair (dead-route tracks 3*eps directly),\n"
               "and a welded relay crosstalks two feeds. N-hat routes around open\n"
               "failures and needs a long welded chain to crosstalk — both curves\n"
               "stay at ~0 through the sweep, at ~60x the relay budget of the\n"
               "crossbar at this size (the Theta(n log^2 n) premium shrinks\n"
               "relative to n^2 as n grows).\n";
  return 0;
}
