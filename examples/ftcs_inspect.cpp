// ftcs_inspect: build any network in the library from the command line,
// print its vital statistics, optionally inject faults and export to DOT
// or the ftcs text format.
//
//   ftcs_inspect <network> [options]
//     networks: crossbar:N benes:K clos:N butterfly:K multibutterfly:K
//               cantor:K superconcentrator:N recursive-nb:LEVELS
//               nhat-sim:NU nhat-paper:NU
//   options:
//     --eps E        inject symmetric faults at rate E (seeded)
//     --seed S       RNG seed (default 1)
//     --dot FILE     write Graphviz DOT
//     --save FILE    write ftcs text format
//     --churn N      run N churn operations and report blocking
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fault/fault_instance.hpp"
#include "ftcs/ft_network.hpp"
#include "ftcs/verify.hpp"
#include "graph/algorithms.hpp"
#include "graph/io.hpp"
#include "networks/benes.hpp"
#include "networks/butterfly.hpp"
#include "networks/cantor.hpp"
#include "networks/clos.hpp"
#include "networks/crossbar.hpp"
#include "networks/multibutterfly.hpp"
#include "networks/pippenger_recursive.hpp"
#include "networks/superconcentrator.hpp"
#include "reliability/rare_event.hpp"

namespace {

using namespace ftcs;

graph::Network build_by_name(const std::string& spec, std::uint64_t seed) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::uint32_t arg =
      colon == std::string::npos
          ? 8
          : static_cast<std::uint32_t>(std::stoul(spec.substr(colon + 1)));
  if (kind == "crossbar") return networks::build_crossbar(arg);
  if (kind == "benes") return networks::Benes(arg).network();
  if (kind == "clos") return networks::build_clos(networks::clos_nonblocking_for(arg));
  if (kind == "butterfly") return networks::build_butterfly(arg);
  if (kind == "multibutterfly")
    return networks::build_multibutterfly({arg, 2, seed});
  if (kind == "cantor") return networks::build_cantor({arg, 0});
  if (kind == "superconcentrator") {
    networks::SuperconcentratorParams p;
    p.n = arg;
    p.seed = seed;
    return networks::build_superconcentrator(p);
  }
  if (kind == "recursive-nb") {
    networks::RecursiveNonblockingParams p;
    p.levels = arg;
    p.width_mult = 8;
    p.degree = 6;
    p.seed = seed;
    return networks::build_recursive_nonblocking(p);
  }
  if (kind == "nhat-sim")
    return core::build_ft_network(core::FtParams::sim(arg, 8, 6, 1, seed)).net;
  if (kind == "nhat-paper")
    return core::build_ft_network(core::FtParams::paper(arg, seed)).net;
  throw std::invalid_argument("unknown network kind: " + kind);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cout << "usage: ftcs_inspect <network[:param]> [--eps E] [--seed S] "
                 "[--dot FILE] [--save FILE] [--churn N]\n"
                 "networks: crossbar benes clos butterfly multibutterfly cantor\n"
                 "          superconcentrator recursive-nb nhat-sim nhat-paper\n";
    return 2;
  }
  std::uint64_t seed = 1;
  double eps = 0.0;
  std::string dot_file, save_file;
  std::size_t churn_ops = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--eps") eps = std::stod(next());
    else if (flag == "--seed") seed = std::stoull(next());
    else if (flag == "--dot") dot_file = next();
    else if (flag == "--save") save_file = next();
    else if (flag == "--churn") churn_ops = std::stoul(next());
    else {
      std::cerr << "unknown option " << flag << "\n";
      return 2;
    }
  }

  graph::Network net;
  try {
    net = build_by_name(argv[1], seed);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  std::cout << "name:      " << net.name << "\n"
            << "terminals: " << net.inputs.size() << " in / "
            << net.outputs.size() << " out\n"
            << "links:     " << net.g.vertex_count() << "\n"
            << "switches:  " << net.g.edge_count() << "\n"
            << "depth:     " << graph::network_depth(net) << "\n"
            << "valid:     " << (net.validate().empty() ? "yes" : net.validate())
            << "\n";
  const auto dom = reliability::dominant_short_term(net);
  std::cout << "min terminal chain: " << dom.min_length << " switches ("
            << dom.chain_count << " chains)\n";

  std::vector<std::uint8_t> blocked, blocked_edges;
  if (eps > 0) {
    fault::FaultInstance inst(net, fault::FaultModel::symmetric(eps), seed);
    std::cout << "faults @ eps=" << eps << ": " << inst.open_count()
              << " open, " << inst.closed_count() << " closed; shorted="
              << (inst.terminals_shorted() ? "YES" : "no") << "\n";
    blocked = inst.faulty_non_terminal_mask();
    blocked_edges = inst.failed_edge_mask();
  }

  if (churn_ops > 0) {
    const auto result = core::nonblocking_churn(net, churn_ops, seed, blocked);
    std::cout << "churn: " << result.connects << " connects, "
              << result.failures << " blocked, max concurrent "
              << result.max_concurrent << "\n";
  }
  if (!dot_file.empty()) {
    std::ofstream os(dot_file);
    graph::write_dot(os, net);
    std::cout << "wrote " << dot_file << "\n";
  }
  if (!save_file.empty()) {
    std::ofstream os(save_file);
    graph::write_network(os, net);
    std::cout << "wrote " << save_file << "\n";
  }
  return 0;
}
