// Quickstart: build the fault-tolerant network 𝒩̂, break it, repair it,
// and route calls through the survivor.
//
//   $ ./quickstart [nu] [eps]
//
// Walks through the library's core loop:
//   1. construct 𝒩̂ for n = 4^ν terminals (sim profile);
//   2. sample a random fault instance at switch failure rate ε;
//   3. check the §6 criterion (no shorts + center-stage majority access);
//   4. repair by discarding faulty internal vertices;
//   5. greedily route a full random permutation through the survivor.
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "fault/fault_instance.hpp"
#include "ftcs/ft_network.hpp"
#include "ftcs/majority_access.hpp"
#include "ftcs/monte_carlo.hpp"
#include "ftcs/verify.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  using namespace ftcs;
  const std::uint32_t nu = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2;
  const double eps = argc > 2 ? std::atof(argv[2]) : 1e-3;

  std::cout << "== ftcs quickstart ==\n";
  const auto params = core::FtParams::sim(nu, 8, 6, 1, 42);
  const auto ft = core::build_ft_network(params);
  std::cout << "built " << ft.net.name << ": n = " << ft.n()
            << " terminals, " << ft.net.g.vertex_count() << " links, "
            << ft.net.size() << " switches, depth " << params.predicted_depth()
            << "\n";

  fault::FaultInstance instance(ft.net, fault::FaultModel::symmetric(eps), 7);
  std::cout << "injected faults at eps = " << eps << ": "
            << instance.open_count() << " open, " << instance.closed_count()
            << " closed (" << instance.faulty_vertex_count()
            << " links touched)\n";

  const auto trial = core::theorem2_trial(ft, fault::FaultModel::symmetric(eps), 7);
  std::cout << "Theorem-2 criterion: no_short=" << trial.no_short
            << " majority_fwd=" << trial.majority_fwd
            << " majority_bwd=" << trial.majority_bwd
            << " => contains nonblocking network: "
            << (trial.success() ? "YES" : "NO") << "\n";
  if (!trial.success()) {
    std::cout << "instance unlucky at this eps; try a smaller one\n";
    return 1;
  }

  // Route a full random permutation over the damaged network, avoiding the
  // discarded (faulty) vertices — greedy BFS per the paper's §4 remark.
  const auto faulty = instance.faulty_non_terminal_mask();
  util::Xoshiro256 rng(3);
  std::vector<std::uint32_t> perm(ft.n());
  std::iota(perm.begin(), perm.end(), 0u);
  util::shuffle(perm, rng);
  const auto paths = core::route_permutation_greedy(
      ft.net, perm, 50, 1, std::vector<std::uint8_t>(faulty.begin(), faulty.end()));
  if (!paths) {
    std::cout << "routing failed (should not happen when the criterion holds)\n";
    return 1;
  }
  std::cout << "routed all " << ft.n() << " calls; validation: "
            << (core::validate_routing(ft.net, perm, *paths).empty() ? "ok" : "BROKEN")
            << "\n";
  std::size_t total = 0;
  for (const auto& p : *paths) total += p.size() - 1;
  std::cout << "mean path length " << static_cast<double>(total) / ft.n()
            << " switches (depth bound " << params.predicted_depth() << ")\n";
  return 0;
}
