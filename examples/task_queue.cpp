// Parallel task-queue scheduling over a superconcentrator — the Cole [Co]
// motivation the paper cites for superconcentrators in parallel computing.
//
//   $ ./task_queue [rounds]
//
// Scenario: P processors pull work items from a shared queue through an
// interconnect. Each round, a random subset of r processors goes idle and
// must be matched to r pending tasks — exactly the superconcentrator
// property: ANY r inputs can reach ANY r outputs along vertex-disjoint
// paths. We run the workload over (a) a linear-size superconcentrator and
// (b) a butterfly of the same terminal count (NOT a superconcentrator),
// counting rounds where the full matching exists, with and without faults.
//
// Each round is also SERVED, not just verified: the scheduler's chosen
// processor->task pairing is submitted as a batch to a svc::Exchange over
// the concurrent routing engine and drained in admission epochs ("svc
// carried" column). Matching existence is a maxflow fact about SOME
// pairing; the exchange must realize ONE SPECIFIC pairing greedily, so its
// carried fraction lower-bounds the matching column.
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "fault/fault_instance.hpp"
#include "graph/maxflow.hpp"
#include "networks/butterfly.hpp"
#include "networks/superconcentrator.hpp"
#include "svc/admission.hpp"
#include "svc/exchange.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace {

using namespace ftcs;

struct RoundResult {
  bool matching_ok = false;  // maxflow: some disjoint matching exists
  std::size_t carried = 0;   // calls the exchange actually served
};

// One scheduling round: r idle processors (inputs), r pending task slots
// (outputs). The maxflow check asks whether ANY disjoint matching exists;
// the exchange then serves the scheduler's specific pairing as one batch.
RoundResult run_round(const graph::Network& net, std::size_t r,
                      util::Xoshiro256& rng,
                      const std::vector<std::uint8_t>* faulty) {
  const std::size_t n_in = net.inputs.size(), n_out = net.outputs.size();
  std::vector<std::uint32_t> in_idx(n_in), out_idx(n_out);
  std::iota(in_idx.begin(), in_idx.end(), 0u);
  std::iota(out_idx.begin(), out_idx.end(), 0u);
  util::shuffle(in_idx, rng);
  util::shuffle(out_idx, rng);
  in_idx.resize(r);
  out_idx.resize(r);

  RoundResult result;
  std::vector<graph::VertexId> ins, outs;
  ins.reserve(r);
  outs.reserve(r);
  for (std::size_t i = 0; i < r; ++i) {
    ins.push_back(net.inputs[in_idx[i]]);
    outs.push_back(net.outputs[out_idx[i]]);
  }
  const std::size_t flow =
      faulty ? graph::max_vertex_disjoint_paths(net.g, ins, outs, *faulty)
             : graph::max_vertex_disjoint_paths(net.g, ins, outs);
  result.matching_ok = flow == r;

  // Serve the pairing: batch-submit, drain in admission epochs of 8.
  svc::ExchangeConfig cfg;
  cfg.backend = svc::Backend::kConcurrent;
  cfg.sessions = 2;
  if (faulty) cfg.blocked = *faulty;
  cfg.admission = std::make_unique<svc::FixedWindowAdmission>(8);
  svc::Exchange exchange(net, std::move(cfg));
  std::vector<svc::Ticket> tickets;
  tickets.reserve(r);
  for (std::size_t i = 0; i < r; ++i)
    tickets.push_back(exchange.submit({in_idx[i], out_idx[i]}));
  exchange.drain_all();
  for (const svc::Ticket t : tickets) {
    const auto outcome = exchange.poll(t);
    if (outcome && outcome->connected()) ++result.carried;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 200;
  const std::uint32_t p = 32;  // processors

  networks::SuperconcentratorParams sp;
  sp.n = p;
  sp.degree = 6;
  sp.base_size = 8;
  sp.seed = 11;
  const auto sc = networks::build_superconcentrator(sp);
  const auto bf = networks::build_butterfly(5);  // 32 terminals

  std::cout << "== task-queue scheduling over an interconnect ==\n"
            << p << " processors; superconcentrator: " << sc.g.edge_count()
            << " switches (linear!), butterfly: " << bf.g.edge_count()
            << " switches\n\n";

  util::Table t({"network", "faults", "batch size r", "matching ok", "rounds",
                 "svc carried"});
  util::Xoshiro256 rng(3);
  for (const auto* entry : {&sc, &bf}) {
    for (double eps : {0.0, 0.002}) {
      fault::FaultInstance inst(*entry, fault::FaultModel::symmetric(eps), 9);
      const auto faulty = inst.faulty_non_terminal_mask();
      for (std::size_t r : {4u, 16u, 32u}) {
        int ok = 0;
        std::size_t carried = 0;
        for (int round = 0; round < rounds; ++round) {
          const auto res =
              run_round(*entry, r, rng, eps > 0 ? &faulty : nullptr);
          if (res.matching_ok) ++ok;
          carried += res.carried;
        }
        const double carried_frac =
            static_cast<double>(carried) /
            static_cast<double>(static_cast<std::size_t>(rounds) * r);
        t.add(entry->name, eps, r, ok, rounds, carried_frac);
      }
    }
  }
  t.print(std::cout);
  std::cout
      << "\nReading: the superconcentrator admits EVERY batch (its defining\n"
         "property, at 1/5th the butterfly's asymptotic cost growth) and\n"
         "tolerates sparse faults on most rounds; the butterfly misses\n"
         "batches even fault-free — it simply is not a superconcentrator.\n"
         "'svc carried' is the fraction of calls the exchange served\n"
         "greedily for the specific pairing: existence of a matching\n"
         "(maxflow, any pairing) upper-bounds what greedy circuit service\n"
         "of one pairing can carry.\n";
  return 0;
}
