// Parallel task-queue scheduling over a superconcentrator — the Cole [Co]
// motivation the paper cites for superconcentrators in parallel computing.
//
//   $ ./task_queue [rounds]
//
// Scenario: P processors pull work items from a shared queue through an
// interconnect. Each round, a random subset of r processors goes idle and
// must be matched to r pending tasks — exactly the superconcentrator
// property: ANY r inputs can reach ANY r outputs along vertex-disjoint
// paths. We run the workload over (a) a linear-size superconcentrator and
// (b) a butterfly of the same terminal count (NOT a superconcentrator),
// counting rounds where the full matching exists, with and without faults.
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "fault/fault_instance.hpp"
#include "graph/maxflow.hpp"
#include "networks/butterfly.hpp"
#include "networks/superconcentrator.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace {

using namespace ftcs;

// One scheduling round: can the r idle processors (inputs) all reach r
// pending task slots (outputs) disjointly?
bool round_ok(const graph::Network& net, std::size_t r, util::Xoshiro256& rng,
              const std::vector<std::uint8_t>* faulty) {
  std::vector<graph::VertexId> ins = net.inputs, outs = net.outputs;
  util::shuffle(ins, rng);
  util::shuffle(outs, rng);
  ins.resize(r);
  outs.resize(r);
  const std::size_t flow =
      faulty ? graph::max_vertex_disjoint_paths(net.g, ins, outs, *faulty)
             : graph::max_vertex_disjoint_paths(net.g, ins, outs);
  return flow == r;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 200;
  const std::uint32_t p = 32;  // processors

  networks::SuperconcentratorParams sp;
  sp.n = p;
  sp.degree = 6;
  sp.base_size = 8;
  sp.seed = 11;
  const auto sc = networks::build_superconcentrator(sp);
  const auto bf = networks::build_butterfly(5);  // 32 terminals

  std::cout << "== task-queue scheduling over an interconnect ==\n"
            << p << " processors; superconcentrator: " << sc.g.edge_count()
            << " switches (linear!), butterfly: " << bf.g.edge_count()
            << " switches\n\n";

  util::Table t({"network", "faults", "batch size r", "rounds ok", "rounds"});
  util::Xoshiro256 rng(3);
  for (const auto* entry : {&sc, &bf}) {
    for (double eps : {0.0, 0.002}) {
      fault::FaultInstance inst(*entry, fault::FaultModel::symmetric(eps), 9);
      const auto faulty = inst.faulty_non_terminal_mask();
      for (std::size_t r : {4u, 16u, 32u}) {
        int ok = 0;
        for (int round = 0; round < rounds; ++round)
          if (round_ok(*entry, r, rng, eps > 0 ? &faulty : nullptr)) ++ok;
        t.add(entry->name, eps, r, ok, rounds);
      }
    }
  }
  t.print(std::cout);
  std::cout
      << "\nReading: the superconcentrator schedules EVERY batch (its defining\n"
         "property, at 1/5th the butterfly's asymptotic cost growth), and\n"
         "tolerates sparse faults on most rounds; the butterfly misses\n"
         "batches even fault-free — it simply is not a superconcentrator.\n";
  return 0;
}
